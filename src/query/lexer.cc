#include "query/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tpstream {
namespace query {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsUnitChar(char c) {
  // Unit text: letters, digits, '/', '^', and any non-ASCII byte (UTF-8
  // continuation, e.g. the superscript in "m/s²").
  return std::isalnum(static_cast<unsigned char>(c)) || c == '/' ||
         c == '^' || static_cast<unsigned char>(c) >= 0x80;
}

char ToLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

bool Token::Is(const char* keyword) const {
  if (type != TokenType::kIdent) return false;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    if (keyword[i] == '\0' || ToLower(text[i]) != ToLower(keyword[i])) {
      return false;
    }
  }
  return keyword[i] == '\0';
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_int = true;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_int = false;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
          ++i;
        }
      }
      token.type = TokenType::kNumber;
      token.text = text.substr(start, i - start);
      // strtod instead of std::stod: the scanner guarantees the text is a
      // valid literal, but a huge one (hundreds of digits) overflows and
      // std::stod would throw std::out_of_range through the
      // exception-free query frontend.
      errno = 0;
      token.number = std::strtod(token.text.c_str(), nullptr);
      if (errno == ERANGE && std::abs(token.number) == HUGE_VAL) {
        return Status::ParseError("numeric literal '" + token.text +
                                  "' out of range at offset " +
                                  std::to_string(token.position));
      }
      token.is_int = is_int;
      // Attached unit (must start with a letter or a non-ASCII byte).
      if (i < n && (std::isalpha(static_cast<unsigned char>(text[i])) ||
                    static_cast<unsigned char>(text[i]) >= 0x80)) {
        const size_t unit_start = i;
        while (i < n && IsUnitChar(text[i])) ++i;
        token.unit = text.substr(unit_start, i - unit_start);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentCont(text[i])) ++i;
      token.type = TokenType::kIdent;
      token.text = text.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      const size_t start = i;
      while (i < n && text[i] != quote) ++i;
      if (i == n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = text.substr(start, i - start);
      ++i;  // closing quote
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-character operators first.
    auto two = [&](const char* op) {
      return i + 1 < n && text[i] == op[0] && text[i + 1] == op[1];
    };
    token.type = TokenType::kSymbol;
    if (two("<=") || two(">=") || two("==") || two("!=")) {
      token.text = text.substr(i, 2);
      i += 2;
    } else if (std::string("()<>=,;.+-*/").find(c) != std::string::npos) {
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace query
}  // namespace tpstream
