#ifndef TPSTREAM_QUERY_GROUP_BUILDER_H_
#define TPSTREAM_QUERY_GROUP_BUILDER_H_

#include <memory>
#include <string>
#include <utility>

#include "common/schema.h"
#include "multi/query_group.h"

namespace tpstream {
namespace query {

/// Group-level construction entry: compiles query texts (ParseQuery) or
/// accepts pre-built QuerySpecs against one input schema and registers
/// them on a multi::QueryGroup. This is the standing-query front door —
/// thousands of textual queries become one engine with shared situation
/// derivation.
///
///   QueryGroupBuilder gb(schema);
///   auto id = gb.AddQueryText(
///       "DEFINE A AS S.x > 1 PATTERN ... RETURN count(A.x) AS n",
///       [](const Event& e) { ... });
///   if (!id.ok()) { /* report id.status() */ }
///   std::unique_ptr<multi::QueryGroup> group = gb.Build();
///   group->Push(event);  // once per event, for all queries
///
/// Build() seals nothing — the group still accepts AddQuery() until its
/// first Push(). The builder is single-use: Build() releases the group.
class QueryGroupBuilder {
 public:
  explicit QueryGroupBuilder(Schema schema,
                             multi::QueryGroup::Options options = {})
      : schema_(std::move(schema)),
        group_(std::make_unique<multi::QueryGroup>(std::move(options))) {}

  /// Parses `text` against the group schema and registers the query.
  /// Returns the dense query id (see multi::QueryGroup::AddQuery).
  Result<int> AddQueryText(
      const std::string& text, multi::QueryGroup::OutputCallback output,
      multi::QueryGroup::QueryOptions query_options = {});

  /// Registers a pre-compiled spec (QueryBuilder::Build or ParseQuery).
  Result<int> AddSpec(QuerySpec spec,
                      multi::QueryGroup::OutputCallback output,
                      multi::QueryGroup::QueryOptions query_options = {});

  const Schema& schema() const { return schema_; }
  int num_queries() const { return group_->num_queries(); }

  /// Releases the configured group. The builder is empty afterwards.
  std::unique_ptr<multi::QueryGroup> Build() { return std::move(group_); }

 private:
  Schema schema_;
  std::unique_ptr<multi::QueryGroup> group_;
};

}  // namespace query
}  // namespace tpstream

#endif  // TPSTREAM_QUERY_GROUP_BUILDER_H_
