#ifndef TPSTREAM_QUERY_LEXER_H_
#define TPSTREAM_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tpstream {
namespace query {

enum class TokenType : uint8_t {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operator, text holds the exact spelling
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier text, operator spelling, string content
  double number = 0;  // numeric value for kNumber
  bool is_int = false;
  std::string unit;  // unit attached to a number ("s", "mph", "m/s^2", ...)
  int position = 0;  // byte offset, for diagnostics

  /// Case-insensitive keyword / identifier comparison.
  bool Is(const char* keyword) const;
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Splits query text into tokens. Numbers may carry an attached unit
/// ("8m/s^2", "70mph", "5s"); units are alphanumeric sequences that may
/// contain '/', '^' and non-ASCII bytes (for "m/s²").
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace query
}  // namespace tpstream

#endif  // TPSTREAM_QUERY_LEXER_H_
