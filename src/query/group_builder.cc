#include "query/group_builder.h"

#include "query/parser.h"

namespace tpstream {
namespace query {

Result<int> QueryGroupBuilder::AddQueryText(
    const std::string& text, multi::QueryGroup::OutputCallback output,
    multi::QueryGroup::QueryOptions query_options) {
  Result<QuerySpec> spec = ParseQuery(text, schema_);
  if (!spec.ok()) return spec.status();
  return AddSpec(std::move(spec).value(), std::move(output),
                 std::move(query_options));
}

Result<int> QueryGroupBuilder::AddSpec(
    QuerySpec spec, multi::QueryGroup::OutputCallback output,
    multi::QueryGroup::QueryOptions query_options) {
  return group_->AddQuery(std::move(spec), std::move(output),
                          std::move(query_options));
}

}  // namespace query
}  // namespace tpstream
