#ifndef TPSTREAM_QUERY_PARSER_H_
#define TPSTREAM_QUERY_PARSER_H_

#include <string>

#include "common/schema.h"
#include "common/status.h"
#include "core/query_spec.h"

namespace tpstream {
namespace query {

/// Parses and compiles a TPStream query (the language of Listing 1)
/// against the input stream's schema. Example:
///
///   FROM CarSensors CS PARTITION BY CS.car_id
///   DEFINE A AS CS.accel > 8 AT LEAST 5s,
///          B AS CS.speed > 70 BETWEEN 4s AND 30s,
///          C AS CS.accel < -9 AT LEAST 3s
///   PATTERN A meets B; A overlaps B; A starts B; A during B
///       AND C during B; B finishes C; B overlaps C; B meets C
///       AND A before C
///   WITHIN 5 MINUTES
///   RETURN first(B.car_id) AS id, avg(B.speed) AS avg_speed
///
/// Time units: s/seconds (1 tick), minutes (60), hours (3600); bare
/// numbers are ticks. Physical units attached to numeric literals in
/// predicates ("8m/s^2", "70mph") are accepted and ignored. Within one
/// PATTERN conjunct, semicolon-separated relations are alternatives and
/// must relate the same pair of symbols (Definition 10).
Result<QuerySpec> ParseQuery(const std::string& text, const Schema& schema);

}  // namespace query
}  // namespace tpstream

#endif  // TPSTREAM_QUERY_PARSER_H_
