#include "query/parser.h"

#include <unordered_map>

#include "algebra/interval_relation.h"
#include "query/lexer.h"

namespace tpstream {
namespace query {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<QuerySpec> Parse();

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeKeyword(const char* kw) {
    if (Peek().Is(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (near offset " +
                              std::to_string(Peek().position) + ")");
  }

  // --- clause parsers ----------------------------------------------------
  Status ParseFrom();
  Status ParseDefine();
  Status ParsePattern();
  Status ParseWithin();
  Status ParseReturn();

  Result<Duration> ParseDuration();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  /// Resolves `name` or `prefix.name` to a schema field expression.
  Result<ExprPtr> ResolveField();
  Result<int> ResolveFieldIndex();

  int SymbolIndex(const std::string& name) const {
    auto it = symbols_.find(name);
    return it == symbols_.end() ? -1 : it->second;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Schema& schema_;

  std::string stream_name_;
  std::string stream_alias_;
  std::unordered_map<std::string, int> symbols_;
  QuerySpec spec_;
};

bool IsDurationKeywordAhead(const Token& t) {
  return t.Is("at") || t.Is("between");
}

Result<QuerySpec> Parser::Parse() {
  if (Status s = ParseFrom(); !s.ok()) return s;
  if (Status s = ParseDefine(); !s.ok()) return s;
  if (Status s = ParsePattern(); !s.ok()) return s;
  if (Status s = ParseWithin(); !s.ok()) return s;
  if (Peek().Is("return")) {
    if (Status s = ParseReturn(); !s.ok()) return s;
  }
  if (Peek().type != TokenType::kEnd && !Peek().IsSymbol(";")) {
    return Error("unexpected trailing input");
  }
  spec_.input_schema = schema_;
  // Symbol names for the pattern were fixed during DEFINE.
  if (Status s = spec_.Validate(); !s.ok()) return s;
  return std::move(spec_);
}

Status Parser::ParseFrom() {
  if (!ConsumeKeyword("from")) return Error("expected FROM");
  if (Peek().type != TokenType::kIdent) return Error("expected stream name");
  stream_name_ = Advance().text;
  // Optional alias (an identifier that is not the next clause keyword).
  if (Peek().type == TokenType::kIdent && !Peek().Is("define") &&
      !Peek().Is("partition")) {
    stream_alias_ = Advance().text;
  }
  if (ConsumeKeyword("partition")) {
    if (!ConsumeKeyword("by")) return Error("expected BY after PARTITION");
    auto field = ResolveFieldIndex();
    if (!field.ok()) return field.status();
    spec_.partition_field = field.value();
  }
  return Status::OK();
}

Status Parser::ParseDefine() {
  if (!ConsumeKeyword("define")) return Error("expected DEFINE");
  do {
    if (Peek().type != TokenType::kIdent) return Error("expected symbol name");
    const std::string name = Advance().text;
    if (symbols_.count(name) != 0) {
      return Error("duplicate situation symbol '" + name + "'");
    }
    if (!ConsumeKeyword("as")) return Error("expected AS");
    auto predicate = ParseExpr();
    if (!predicate.ok()) return predicate.status();

    DurationConstraint duration;
    while (IsDurationKeywordAhead(Peek())) {
      if (ConsumeKeyword("at")) {
        const bool least = ConsumeKeyword("least");
        if (!least && !ConsumeKeyword("most")) {
          return Error("expected LEAST or MOST after AT");
        }
        auto d = ParseDuration();
        if (!d.ok()) return d.status();
        if (least) {
          duration.min = d.value();
        } else {
          duration.max = d.value();
        }
      } else if (ConsumeKeyword("between")) {
        auto lo = ParseDuration();
        if (!lo.ok()) return lo.status();
        if (!ConsumeKeyword("and")) return Error("expected AND in BETWEEN");
        auto hi = ParseDuration();
        if (!hi.ok()) return hi.status();
        duration.min = lo.value();
        duration.max = hi.value();
      }
    }
    symbols_.emplace(name, static_cast<int>(spec_.definitions.size()));
    spec_.definitions.emplace_back(name, predicate.value(),
                                   std::vector<AggregateSpec>{}, duration);
  } while (ConsumeSymbol(","));
  return Status::OK();
}

Status Parser::ParsePattern() {
  if (!ConsumeKeyword("pattern")) return Error("expected PATTERN");
  std::vector<std::string> names;
  names.reserve(spec_.definitions.size());
  for (const SituationDefinition& def : spec_.definitions) {
    names.push_back(def.symbol);
  }
  spec_.pattern = TemporalPattern(names);

  do {
    // One temporal constraint: alternatives separated by ';', all on the
    // same unordered pair of symbols.
    int pair_a = -1;
    int pair_b = -1;
    do {
      if (Peek().type != TokenType::kIdent) {
        return Error("expected situation symbol in PATTERN");
      }
      const std::string lhs = Advance().text;
      // Relation name, possibly hyphenated (met-by, started-by, ...).
      if (Peek().type != TokenType::kIdent) {
        return Error("expected temporal relation name");
      }
      std::string rel_name = Advance().text;
      if (Peek().IsSymbol("-") && Peek(1).type == TokenType::kIdent) {
        ++pos_;
        rel_name += "-" + Advance().text;
      }
      const auto rel = RelationFromName(rel_name);
      if (!rel) return Error("unknown temporal relation '" + rel_name + "'");
      if (Peek().type != TokenType::kIdent) {
        return Error("expected situation symbol in PATTERN");
      }
      const std::string rhs = Advance().text;

      const int a = SymbolIndex(lhs);
      const int b = SymbolIndex(rhs);
      if (a < 0) return Error("undefined symbol '" + lhs + "'");
      if (b < 0) return Error("undefined symbol '" + rhs + "'");
      const int lo = std::min(a, b);
      const int hi = std::max(a, b);
      if (pair_a < 0) {
        pair_a = lo;
        pair_b = hi;
      } else if (pair_a != lo || pair_b != hi) {
        return Error(
            "alternatives of one constraint must relate the same pair of "
            "symbols");
      }
      if (Status s = spec_.pattern.AddRelation(a, *rel, b); !s.ok()) {
        return s;
      }
    } while (ConsumeSymbol(";"));
  } while (ConsumeKeyword("and"));
  return Status::OK();
}

Status Parser::ParseWithin() {
  if (!ConsumeKeyword("within")) return Error("expected WITHIN");
  auto d = ParseDuration();
  if (!d.ok()) return d.status();
  spec_.window = d.value();
  return Status::OK();
}

Status Parser::ParseReturn() {
  if (!ConsumeKeyword("return")) return Error("expected RETURN");
  do {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected aggregate function in RETURN");
    }
    const std::string agg_name = Advance().text;
    // Interval accessors: start(S), end(S), duration(S).
    ReturnItem::Source source = ReturnItem::Source::kAggregate;
    Token fn = tokens_[pos_ - 1];
    if (fn.Is("start")) source = ReturnItem::Source::kStartTime;
    if (fn.Is("end")) source = ReturnItem::Source::kEndTime;
    if (fn.Is("duration")) source = ReturnItem::Source::kDuration;
    if (source != ReturnItem::Source::kAggregate) {
      if (!ConsumeSymbol("(")) return Error("expected '('");
      if (Peek().type != TokenType::kIdent) return Error("expected symbol");
      const std::string sym_name = Advance().text;
      const int symbol = SymbolIndex(sym_name);
      if (symbol < 0) return Error("undefined symbol '" + sym_name + "'");
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      std::string out_name = agg_name + "_" + sym_name;
      if (ConsumeKeyword("as")) {
        if (Peek().type != TokenType::kIdent) return Error("expected name");
        out_name = Advance().text;
      }
      ReturnItem item;
      item.symbol = symbol;
      item.source = source;
      item.name = out_name;
      spec_.returns.push_back(std::move(item));
      continue;
    }
    const auto kind = AggKindFromName(agg_name);
    if (!kind) return Error("unknown aggregate '" + agg_name + "'");
    if (!ConsumeSymbol("(")) return Error("expected '('");
    if (Peek().type != TokenType::kIdent) return Error("expected symbol");
    const std::string sym_name = Advance().text;
    const int symbol = SymbolIndex(sym_name);
    if (symbol < 0) return Error("undefined symbol '" + sym_name + "'");

    int field = -1;
    std::string field_name;
    if (ConsumeSymbol(".")) {
      if (Peek().type != TokenType::kIdent) return Error("expected field");
      field_name = Advance().text;
      field = schema_.IndexOf(field_name);
      if (field < 0) return Error("unknown field '" + field_name + "'");
    } else if (*kind != AggKind::kCount) {
      return Error("aggregate '" + agg_name + "' requires symbol.field");
    }
    if (!ConsumeSymbol(")")) return Error("expected ')'");

    std::string out_name = agg_name + "_" + sym_name +
                           (field_name.empty() ? "" : "_" + field_name);
    if (ConsumeKeyword("as")) {
      if (Peek().type != TokenType::kIdent) return Error("expected name");
      out_name = Advance().text;
    }

    // Find or add the aggregate slot in the symbol's definition.
    auto& aggs = spec_.definitions[symbol].aggregates;
    int agg_index = -1;
    for (int i = 0; i < static_cast<int>(aggs.size()); ++i) {
      if (aggs[i].kind == *kind && aggs[i].field == field) {
        agg_index = i;
        break;
      }
    }
    if (agg_index < 0) {
      agg_index = static_cast<int>(aggs.size());
      aggs.push_back(AggregateSpec{*kind, field, out_name});
    }
    ReturnItem item;
    item.symbol = symbol;
    item.agg_index = agg_index;
    item.name = out_name;
    spec_.returns.push_back(std::move(item));
  } while (ConsumeSymbol(","));
  return Status::OK();
}

Result<Duration> Parser::ParseDuration() {
  if (Peek().type != TokenType::kNumber) {
    return Error("expected duration literal");
  }
  const Token t = Advance();
  std::string unit = t.unit;
  if (unit.empty() && Peek().type == TokenType::kIdent) {
    // Detached unit word ("5 MINUTES").
    const Token& next = Peek();
    if (next.Is("s") || next.Is("sec") || next.Is("secs") ||
        next.Is("second") || next.Is("seconds") || next.Is("min") ||
        next.Is("mins") || next.Is("minute") || next.Is("minutes") ||
        next.Is("h") || next.Is("hour") || next.Is("hours") ||
        next.Is("tick") || next.Is("ticks")) {
      unit = Advance().text;
    }
  }
  for (char& c : unit) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  double scale = 1.0;
  if (unit.empty() || unit == "s" || unit == "sec" || unit == "secs" ||
      unit == "second" || unit == "seconds" || unit == "tick" ||
      unit == "ticks") {
    scale = 1.0;
  } else if (unit == "min" || unit == "mins" || unit == "minute" ||
             unit == "minutes") {
    scale = 60.0;
  } else if (unit == "h" || unit == "hour" || unit == "hours") {
    scale = 3600.0;
  } else {
    return Error("unknown time unit '" + unit + "'");
  }
  return static_cast<Duration>(t.number * scale);
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  auto lhs = ParseAnd();
  if (!lhs.ok()) return lhs;
  while (ConsumeKeyword("or")) {
    auto rhs = ParseAnd();
    if (!rhs.ok()) return rhs;
    lhs = Or(lhs.value(), rhs.value());
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  auto lhs = ParseNot();
  if (!lhs.ok()) return lhs;
  while (Peek().Is("and") && !IsDurationKeywordAhead(Peek(1))) {
    ++pos_;
    auto rhs = ParseNot();
    if (!rhs.ok()) return rhs;
    lhs = And(lhs.value(), rhs.value());
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (ConsumeKeyword("not")) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand;
    return ExprPtr(Not(operand.value()));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  auto lhs = ParseAdditive();
  if (!lhs.ok()) return lhs;
  BinaryOp op;
  if (ConsumeSymbol("<")) {
    op = BinaryOp::kLt;
  } else if (ConsumeSymbol("<=")) {
    op = BinaryOp::kLe;
  } else if (ConsumeSymbol(">")) {
    op = BinaryOp::kGt;
  } else if (ConsumeSymbol(">=")) {
    op = BinaryOp::kGe;
  } else if (ConsumeSymbol("=") || ConsumeSymbol("==")) {
    op = BinaryOp::kEq;
  } else if (ConsumeSymbol("!=")) {
    op = BinaryOp::kNe;
  } else {
    return lhs;
  }
  auto rhs = ParseAdditive();
  if (!rhs.ok()) return rhs;
  return ExprPtr(Binary(op, lhs.value(), rhs.value()));
}

Result<ExprPtr> Parser::ParseAdditive() {
  auto lhs = ParseMultiplicative();
  if (!lhs.ok()) return lhs;
  while (true) {
    BinaryOp op;
    if (ConsumeSymbol("+")) {
      op = BinaryOp::kAdd;
    } else if (ConsumeSymbol("-")) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    auto rhs = ParseMultiplicative();
    if (!rhs.ok()) return rhs;
    lhs = Binary(op, lhs.value(), rhs.value());
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  auto lhs = ParseUnary();
  if (!lhs.ok()) return lhs;
  while (true) {
    BinaryOp op;
    if (ConsumeSymbol("*")) {
      op = BinaryOp::kMul;
    } else if (ConsumeSymbol("/")) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    auto rhs = ParseUnary();
    if (!rhs.ok()) return rhs;
    lhs = Binary(op, lhs.value(), rhs.value());
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (ConsumeSymbol("-")) {
    auto operand = ParseUnary();
    if (!operand.ok()) return operand;
    return ExprPtr(Negate(operand.value()));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.type == TokenType::kNumber) {
    Advance();
    // Physical units on literals ("8m/s^2", "70mph") are documentation
    // only; the value is used as written. Integer-shaped literals whose
    // strtod value falls outside int64 (the cast would be undefined)
    // stay double, like any other value only double can hold.
    if (t.is_int && t.number >= -9223372036854775808.0 &&
        t.number < 9223372036854775808.0) {
      return ExprPtr(Literal(static_cast<int64_t>(t.number)));
    }
    return ExprPtr(Literal(t.number));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return ExprPtr(Literal(Value(t.text)));
  }
  if (t.Is("true")) {
    Advance();
    return ExprPtr(Literal(true));
  }
  if (t.Is("false")) {
    Advance();
    return ExprPtr(Literal(false));
  }
  if (ConsumeSymbol("(")) {
    auto inner = ParseExpr();
    if (!inner.ok()) return inner;
    if (!ConsumeSymbol(")")) return Error("expected ')'");
    return inner;
  }
  if (t.type == TokenType::kIdent) {
    return ResolveField();
  }
  return Error("expected expression");
}

Result<ExprPtr> Parser::ResolveField() {
  auto index = ResolveFieldIndex();
  if (!index.ok()) return index.status();
  return ExprPtr(
      FieldRef(index.value(), schema_.field(index.value()).name));
}

Result<int> Parser::ResolveFieldIndex() {
  if (Peek().type != TokenType::kIdent) return Error("expected field name");
  std::string name = Advance().text;
  if (ConsumeSymbol(".")) {
    // Qualified reference: prefix must be the stream name or alias.
    if (name != stream_name_ && name != stream_alias_) {
      return Error("unknown stream qualifier '" + name + "'");
    }
    if (Peek().type != TokenType::kIdent) return Error("expected field name");
    name = Advance().text;
  }
  const int index = schema_.IndexOf(name);
  if (index < 0) return Error("unknown field '" + name + "'");
  return index;
}

}  // namespace

Result<QuerySpec> ParseQuery(const std::string& text, const Schema& schema) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), schema);
  return parser.Parse();
}

}  // namespace query
}  // namespace tpstream
