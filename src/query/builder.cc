#include "query/builder.h"

namespace tpstream {

QueryBuilder& QueryBuilder::Define(const std::string& symbol,
                                   ExprPtr predicate,
                                   DurationConstraint duration) {
  for (const SituationDefinition& def : definitions_) {
    if (def.symbol == symbol) {
      deferred_error_ =
          Status::InvalidArgument("duplicate symbol '" + symbol + "'");
      return *this;
    }
  }
  definitions_.emplace_back(symbol, std::move(predicate),
                            std::vector<AggregateSpec>{}, duration);
  return *this;
}

QueryBuilder& QueryBuilder::Relate(const std::string& a,
                                   std::initializer_list<Relation> relations,
                                   const std::string& b) {
  relations_.push_back(PendingRelation{a, b, std::vector<Relation>(relations)});
  return *this;
}

QueryBuilder& QueryBuilder::Within(Duration window) {
  window_ = window;
  return *this;
}

QueryBuilder& QueryBuilder::Return(const std::string& output_name,
                                   const std::string& symbol, AggKind kind,
                                   const std::string& field) {
  returns_.push_back(PendingReturn{output_name, symbol, kind, field});
  return *this;
}

QueryBuilder& QueryBuilder::ReturnInterval(const std::string& output_name,
                                           const std::string& symbol,
                                           ReturnItem::Source source) {
  PendingReturn pr;
  pr.name = output_name;
  pr.symbol = symbol;
  pr.source = source;
  returns_.push_back(std::move(pr));
  return *this;
}

QueryBuilder& QueryBuilder::PartitionBy(const std::string& field) {
  partition_field_ = field;
  return *this;
}

Result<QuerySpec> QueryBuilder::Build() const {
  if (!deferred_error_.ok()) return deferred_error_;

  QuerySpec spec;
  spec.input_schema = schema_;
  spec.definitions = definitions_;
  spec.window = window_;

  auto symbol_index = [this](const std::string& name) {
    for (int i = 0; i < static_cast<int>(definitions_.size()); ++i) {
      if (definitions_[i].symbol == name) return i;
    }
    return -1;
  };

  std::vector<std::string> names;
  names.reserve(definitions_.size());
  for (const SituationDefinition& def : definitions_) {
    names.push_back(def.symbol);
  }
  spec.pattern = TemporalPattern(names);
  for (const PendingRelation& pr : relations_) {
    const int a = symbol_index(pr.a);
    const int b = symbol_index(pr.b);
    if (a < 0 || b < 0) {
      return Status::InvalidArgument("Relate references undefined symbol '" +
                                     (a < 0 ? pr.a : pr.b) + "'");
    }
    for (Relation r : pr.relations) {
      if (Status s = spec.pattern.AddRelation(a, r, b); !s.ok()) return s;
    }
  }

  for (const PendingReturn& pr : returns_) {
    const int symbol = symbol_index(pr.symbol);
    if (symbol < 0) {
      return Status::InvalidArgument("Return references undefined symbol '" +
                                     pr.symbol + "'");
    }
    if (pr.source != ReturnItem::Source::kAggregate) {
      ReturnItem item;
      item.symbol = symbol;
      item.source = pr.source;
      item.name = pr.name;
      spec.returns.push_back(std::move(item));
      continue;
    }
    int field = -1;
    if (!pr.field.empty()) {
      field = schema_.IndexOf(pr.field);
      if (field < 0) {
        return Status::InvalidArgument("Return references unknown field '" +
                                       pr.field + "'");
      }
    } else if (pr.kind != AggKind::kCount) {
      return Status::InvalidArgument("aggregate requires a field");
    }
    auto& aggs = spec.definitions[symbol].aggregates;
    int agg_index = -1;
    for (int i = 0; i < static_cast<int>(aggs.size()); ++i) {
      if (aggs[i].kind == pr.kind && aggs[i].field == field) {
        agg_index = i;
        break;
      }
    }
    if (agg_index < 0) {
      agg_index = static_cast<int>(aggs.size());
      aggs.push_back(AggregateSpec{pr.kind, field, pr.name});
    }
    ReturnItem item;
    item.symbol = symbol;
    item.source = pr.source;
    item.agg_index = agg_index;
    item.name = pr.name;
    spec.returns.push_back(std::move(item));
  }

  if (!partition_field_.empty()) {
    spec.partition_field = schema_.IndexOf(partition_field_);
    if (spec.partition_field < 0) {
      return Status::InvalidArgument("unknown PARTITION BY field '" +
                                     partition_field_ + "'");
    }
  }

  if (Status s = spec.Validate(); !s.ok()) return s;
  return spec;
}

}  // namespace tpstream
