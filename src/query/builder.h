#ifndef TPSTREAM_QUERY_BUILDER_H_
#define TPSTREAM_QUERY_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "core/query_spec.h"

namespace tpstream {

/// Fluent, programmatic construction of TPStream queries — the typed
/// alternative to the textual language. Example (the aggressive-driver
/// query of Listing 1):
///
///   QueryBuilder qb(schema);
///   qb.Define("A", Gt(FieldRef(schema, "accel").value(), Literal(8.0)),
///             AtLeast(5))
///     .Define("B", Gt(FieldRef(schema, "speed").value(), Literal(70.0)),
///             Between(4, 30))
///     .Define("C", Lt(FieldRef(schema, "accel").value(), Literal(-9.0)),
///             AtLeast(3))
///     .Relate("A", {Relation::kMeets, Relation::kOverlaps,
///                   Relation::kStarts, Relation::kDuring}, "B")
///     .Relate("C", {Relation::kDuring}, "B")
///     .Relate("B", {Relation::kFinishes, Relation::kOverlaps,
///                   Relation::kMeets}, "C")
///     .Relate("A", {Relation::kBefore}, "C")
///     .Within(300)
///     .Return("id", "B", AggKind::kFirst, "car_id")
///     .Return("avg_speed", "B", AggKind::kAvg, "speed")
///     .PartitionBy("car_id");
///   Result<QuerySpec> spec = qb.Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(Schema schema) : schema_(std::move(schema)) {}

  QueryBuilder& Define(const std::string& symbol, ExprPtr predicate,
                       DurationConstraint duration = {});

  /// Adds a temporal constraint: `a <relations> b`, the set being the
  /// alternatives (Definition 10). Merges with an existing constraint on
  /// the same pair.
  QueryBuilder& Relate(const std::string& a,
                       std::initializer_list<Relation> relations,
                       const std::string& b);
  QueryBuilder& Relate(const std::string& a, Relation relation,
                       const std::string& b) {
    return Relate(a, {relation}, b);
  }

  QueryBuilder& Within(Duration window);

  /// RETURN item: `kind(symbol.field) AS output_name`.
  QueryBuilder& Return(const std::string& output_name,
                       const std::string& symbol, AggKind kind,
                       const std::string& field = "");

  /// Interval accessors: `start(symbol)` / `end(symbol)` /
  /// `duration(symbol)` AS output_name. End and duration are null when
  /// the situation is still ongoing at detection time.
  QueryBuilder& ReturnStart(const std::string& output_name,
                            const std::string& symbol) {
    return ReturnInterval(output_name, symbol,
                          ReturnItem::Source::kStartTime);
  }
  QueryBuilder& ReturnEnd(const std::string& output_name,
                          const std::string& symbol) {
    return ReturnInterval(output_name, symbol, ReturnItem::Source::kEndTime);
  }
  QueryBuilder& ReturnDuration(const std::string& output_name,
                               const std::string& symbol) {
    return ReturnInterval(output_name, symbol,
                          ReturnItem::Source::kDuration);
  }

  QueryBuilder& PartitionBy(const std::string& field);

  /// Validates and produces the QuerySpec. The builder can be reused.
  Result<QuerySpec> Build() const;

 private:
  struct PendingRelation {
    std::string a;
    std::string b;
    std::vector<Relation> relations;
  };
  struct PendingReturn {
    std::string name;
    std::string symbol;
    AggKind kind = AggKind::kCount;
    std::string field;
    ReturnItem::Source source = ReturnItem::Source::kAggregate;
  };

  QueryBuilder& ReturnInterval(const std::string& output_name,
                               const std::string& symbol,
                               ReturnItem::Source source);

  Schema schema_;
  std::vector<SituationDefinition> definitions_;
  std::vector<PendingRelation> relations_;
  std::vector<PendingReturn> returns_;
  Duration window_ = 0;
  std::string partition_field_;
  Status deferred_error_ = Status::OK();
};

/// Duration-constraint helpers mirroring the language's AT LEAST /
/// AT MOST / BETWEEN.
inline DurationConstraint AtLeast(Duration d) {
  DurationConstraint c;
  c.min = d;
  return c;
}
inline DurationConstraint AtMost(Duration d) {
  DurationConstraint c;
  c.max = d;
  return c;
}
inline DurationConstraint Between(Duration lo, Duration hi) {
  DurationConstraint c;
  c.min = lo;
  c.max = hi;
  return c;
}

}  // namespace tpstream

#endif  // TPSTREAM_QUERY_BUILDER_H_
