#ifndef TPSTREAM_EXPR_BYTECODE_H_
#define TPSTREAM_EXPR_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "common/value.h"
#include "expr/expression.h"
#include "expr/simd.h"

namespace tpstream {

/// Compiled predicate bytecode: a flat register program equivalent to one
/// DEFINE predicate's Expression tree, plus a columnar batch entry point.
///
/// Semantics are pinned to the tree interpreter bit-for-bit — the same
/// null/type-error propagation, numeric widening, wraparound integer
/// arithmetic (common/value.h), NaN-aware comparisons and AND/OR
/// short-circuiting (tests/bytecode_fuzz_test.cc differentially fuzzes
/// the two evaluators; the interpreter stays the default oracle). The VM
/// exists purely to make the deriver's per-event hot path cheaper: no
/// virtual dispatch, no Value variant copies, and — through
/// ColumnarBatch — field decoding done once per (event, field) instead of
/// once per (event, predicate).

// --- Instruction set ----------------------------------------------------

enum class OpCode : uint8_t {
  kLoadConst,     // r[dst] = consts[a]
  kLoadField,     // r[dst] = tuple/column field a (null when absent)
  kAdd,           // r[dst] = r[a] op r[b]: numeric widening, null on
  kSub,           //   type mismatch; int op int wraps (common/value.h)
  kMul,
  kDiv,           // always widens to double; null on division by zero
  kCmpEq,         // r[dst] = three-valued comparison of r[a], r[b]:
  kCmpNe,         //   bool on comparable types, null on incomparable
  kCmpLt,         //   (mixed non-numeric types, any null, NaN operand)
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kTruthy,        // r[dst] = bool(Truthy(r[a])) — materializes AND/OR
  kNot,           // r[dst] = bool(!Truthy(r[a]))
  kNeg,           // r[dst] = -r[a] for int/double, null otherwise
  kJump,          // pc = b
  kJumpIfFalsy,   // pc = b when !Truthy(r[a])
  kJumpIfTruthy,  // pc = b when Truthy(r[a])
  kRet,           // return r[a]
  // Fused comparisons: r[dst] = cmp(field a, consts[b]) in one dispatch.
  // `field OP literal` is the dominant DEFINE shape; fusing it removes
  // two loads and two dispatches per evaluation. Must stay contiguous
  // and ordered like the kCmpEq..kCmpGe block (FusedCmpBase relies on
  // the fixed offset).
  kCmpEqFC,
  kCmpNeFC,
  kCmpLtFC,
  kCmpLeFC,
  kCmpGtFC,
  kCmpGeFC,
  // Eager boolean connectives: r[dst] = Truthy(r[a]) op Truthy(r[b]).
  // Only emitted into the branch-free columnar stream. Because every
  // opcode is total (division by zero and type errors yield null, never
  // a trap), evaluating the skipped operand is unobservable and the
  // eager result Value is identical to the short-circuit one.
  kAndEager,
  kOrEager,
};

const char* OpCodeName(OpCode op);

/// One instruction. Operand meaning depends on the opcode: `a` is the
/// first source register (or the constant/field index for loads), `b` the
/// second source register or the jump target.
struct Instr {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
};

/// One VM register: an unboxed Value. Strings are never created by
/// bytecode (no string-producing opcode exists), so a register only ever
/// *borrows* a string owned by the constant pool or by the evaluated
/// tuple.
struct RegSlot {
  ValueType type = ValueType::kNull;
  union Payload {
    int64_t i;
    double d;
    bool b;
    const std::string* s;
  } v = {0};
};

/// Uniformity summary of one column (or one register column): when every
/// slot shares a numeric/bool type, the columnar executor runs a
/// type-specialized kernel with no per-row dispatch. The class only
/// *selects* a kernel — every kernel is elementwise-exact (NaN guards,
/// integer-domain int comparisons, null on division by zero), so a
/// conservative kMixed is always safe, never wrong.
enum class ColClass : uint8_t { kMixed, kInt, kDouble, kBool };

/// One register's representation in the SoA (structure-of-arrays)
/// columnar executor. A register is exactly one of:
///  - a *splat*: one RegSlot broadcast over every row (constants, and
///    results provably identical across the batch);
///  - a dense typed column (`cls` kInt/kDouble/kBool): `val` points at
///    contiguous int64/double lanes or 0/1 bool bytes, with `null` an
///    optional per-row null-byte mask (1 = null; value lane then
///    don't-care);
///  - the AoS fallback (`cls` kMixed, no splat): the register lives in
///    ExecScratch::cols as RegSlots, exactly like the scalar executor.
/// `val`/`null` may alias ColumnarBatch storage (zero-copy field loads)
/// or the register's *own* scratch buffers — never another register's,
/// since stack-shaped allocation reuses registers underneath.
struct SoaView {
  ColClass cls = ColClass::kMixed;
  bool splat = false;
  RegSlot splat_val{};
  const void* val = nullptr;
  const uint8_t* null = nullptr;
};

/// Reusable register file, owned by the caller so one evaluation
/// allocates nothing. Sized on first use per program. `cols` is the
/// column-major register file of the columnar executor (register r is
/// the slice [r * rows, (r + 1) * rows)).
///
/// `simd` selects the columnar executor tier: the default resolves the
/// TPSTREAM_SIMD environment variable (off|sse2|avx2|native) or the best
/// level the machine supports; kOff runs the scalar RegSlot loops. The
/// soa_* members are the SIMD executor's owned SoA storage: per-register
/// 8-byte value lanes (soa_lanes), value/null byte pairs (soa_bytes),
/// and conversion/mask scratch (num_tmp/byte_tmp).
struct ExecScratch {
  std::vector<RegSlot> regs;
  std::vector<RegSlot> cols;
  std::vector<ColClass> reg_class;  // uniformity per column register
  simd::SimdLevel simd = simd::DefaultSimdLevel();
  std::vector<SoaView> soa_view;
  std::vector<uint64_t> soa_lanes;  // reg r: [r*rows, (r+1)*rows) lanes
  std::vector<uint8_t> soa_bytes;   // reg r: bools at 2r*rows, nulls at
                                    // (2r+1)*rows
  std::vector<uint64_t> num_tmp;    // 2*rows widening/splat lanes
  std::vector<uint8_t> byte_tmp;    // 3*rows mask-copy + ret scratch
};

// --- Columnar batches ---------------------------------------------------

/// A column-major view of an event batch, restricted to the fields the
/// compiled programs actually reference: column(f)[row] is
/// events[row].payload[f] decoded into a RegSlot exactly once, however
/// many predicates read it. Rebuilt (storage reused) per batch by
/// Deriver::PrepareBatch.
class ColumnarBatch {
 public:
  /// Transposes `events` into columns for each field index in `fields`
  /// (ascending, deduplicated). Rows whose tuple is too short yield null
  /// slots, matching the interpreter's out-of-range FieldRef semantics.
  /// String cells borrow the event's payload, so `events` must outlive
  /// any evaluation against this batch.
  void Assign(std::span<const Event> events, const std::vector<int>& fields);

  size_t num_rows() const { return rows_; }

  /// The decoded cell for (field, row); null slot when `field` was not
  /// materialized. `row < num_rows()`.
  RegSlot Cell(int field, size_t row) const {
    const RegSlot* col = ColumnPtr(field);
    return col == nullptr ? RegSlot{} : col[row];
  }

  /// The whole decoded column for `field` (num_rows() slots), or nullptr
  /// when the field was not materialized — the columnar executor hoists
  /// this lookup out of its per-row loops.
  const RegSlot* ColumnPtr(int field) const {
    const int c = ColumnIndex(field);
    return c < 0 ? nullptr : columns_[c].data();
  }

  /// The uniformity class of `field`'s column (kMixed when absent or
  /// heterogeneous), computed once during Assign.
  ColClass ColumnClass(int field) const {
    const int c = ColumnIndex(field);
    return c < 0 ? ColClass::kMixed : col_class_[c];
  }

  /// Dense SoA views, built during Assign for uniformly-typed columns:
  /// the column's values as a contiguous nullable-free array the SIMD
  /// kernels can load directly. Non-null exactly when ColumnClass(field)
  /// is the matching class.
  const int64_t* IntColumn(int field) const {
    const int c = ColumnIndex(field);
    return c >= 0 && col_class_[c] == ColClass::kInt ? typed_i64_[c].data()
                                                     : nullptr;
  }
  const double* DoubleColumn(int field) const {
    const int c = ColumnIndex(field);
    return c >= 0 && col_class_[c] == ColClass::kDouble
               ? typed_f64_[c].data()
               : nullptr;
  }
  const uint8_t* BoolColumn(int field) const {
    const int c = ColumnIndex(field);
    return c >= 0 && col_class_[c] == ColClass::kBool ? typed_u8_[c].data()
                                                      : nullptr;
  }

 private:
  int ColumnIndex(int field) const {
    return field >= 0 && field < static_cast<int>(col_of_field_.size())
               ? col_of_field_[field]
               : -1;
  }

  std::vector<std::vector<RegSlot>> columns_;
  std::vector<ColClass> col_class_;  // uniformity per columns_ entry
  std::vector<int> col_of_field_;  // field index -> columns_ index or -1
  // SoA mirrors of uniformly-typed columns (only the vector matching the
  // column's class is populated; bool values are 0/1 bytes).
  std::vector<std::vector<int64_t>> typed_i64_;
  std::vector<std::vector<double>> typed_f64_;
  std::vector<std::vector<uint8_t>> typed_u8_;
  size_t rows_ = 0;
};

// --- Programs -----------------------------------------------------------

/// An immutable compiled predicate. Not copyable or movable: register
/// slots of string constants point into the program's own pool, so the
/// program lives behind the unique_ptr CompilePredicate returns.
class BytecodeProgram {
 public:
  BytecodeProgram(const BytecodeProgram&) = delete;
  BytecodeProgram& operator=(const BytecodeProgram&) = delete;

  /// Evaluates against one tuple; returns exactly what the source
  /// Expression's Eval returns (type- and bit-identical).
  Value Run(const Tuple& tuple, ExecScratch* scratch) const;

  /// Convenience overload with a throwaway register file (tests).
  Value Run(const Tuple& tuple) const;

  /// Predicate form: Truthy(Run(tuple)) without materializing the Value.
  bool RunPredicate(const Tuple& tuple, ExecScratch* scratch) const;
  bool RunPredicate(const Tuple& tuple) const;

  /// Columnar entry point: evaluates the predicate over every row of
  /// `batch`, writing Truthy(result) into out[0..num_rows). The batch
  /// must have been assigned with (a superset of) referenced_fields().
  ///
  /// Runs the branch-free flat_code() stream column-at-a-time: one
  /// opcode dispatch covers the whole batch, with registers as columns,
  /// so the per-row cost is just the operation itself. Results are
  /// bit-identical to Run() per row (the fuzzer pins this).
  ///
  /// When scratch->simd is not kOff, registers use the SoA layout
  /// (SoaView) and typed rows run through the simd.h kernel table; the
  /// scalar RegSlot executor remains both the kOff path and the
  /// per-instruction fallback for mixed-typed rows.
  void RunPredicateColumn(const ColumnarBatch& batch, ExecScratch* scratch,
                          uint8_t* out) const;

  /// Bit-packed variant: writes ceil(num_rows/64) words, row r at word
  /// r/64 bit r%64, tail bits zero — the selection bitmap the Deriver
  /// scans word-at-a-time to skip all-false spans.
  void RunPredicateColumnBits(const ColumnarBatch& batch,
                              ExecScratch* scratch,
                              uint64_t* out_words) const;

  /// Field indices this program reads, ascending — the columns a
  /// ColumnarBatch must materialize for RunPredicateColumn.
  const std::vector<int>& referenced_fields() const { return fields_; }

  int num_registers() const { return num_regs_; }
  int num_instructions() const { return static_cast<int>(code_.size()); }
  const std::vector<Instr>& code() const { return code_; }

  /// The branch-free columnar lowering of the same predicate: AND/OR
  /// compile to kAndEager/kOrEager instead of short-circuit jumps, so
  /// the stream is straight-line and can execute column-at-a-time. May
  /// use more registers than code() (eager operands can't share a slot).
  const std::vector<Instr>& flat_code() const { return flat_code_; }
  int num_flat_registers() const { return flat_num_regs_; }

  /// Stable text listing (golden-tested): header line, constant pool,
  /// then one line per instruction with @Ln jump targets. Codegen changes
  /// surface as reviewable golden-file diffs.
  std::string Disassemble() const;

 private:
  friend class PredicateCompiler;
  BytecodeProgram() = default;

  template <typename FieldLoader>
  RegSlot Exec(ExecScratch* scratch, const FieldLoader& load) const;

  void RunColumnScalar(const ColumnarBatch& batch, ExecScratch* scratch,
                       uint8_t* out) const;
  void RunColumnSoa(const ColumnarBatch& batch, ExecScratch* scratch,
                    const simd::Kernels& kernels, uint8_t* out_bytes,
                    uint64_t* out_words) const;

  static void AppendListing(const std::vector<Instr>& code,
                            std::string* out);

  std::vector<Instr> code_;       // short-circuit stream (scalar Run)
  std::vector<Instr> flat_code_;  // branch-free stream (columnar)
  std::vector<Value> consts_;         // owns string literal storage
  std::vector<RegSlot> const_slots_;  // unboxed consts_, prebuilt
  std::vector<int> fields_;           // referenced fields, ascending
  int num_regs_ = 0;
  int flat_num_regs_ = 0;
};

/// Compiles a predicate Expression tree into a bytecode program.
/// Compilation cannot change semantics — it fails (callers then keep the
/// interpreter for that predicate) rather than approximate, e.g. on
/// register or constant pools outgrowing 16-bit operands.
Result<std::shared_ptr<const BytecodeProgram>> CompilePredicate(
    const Expression& expr);

}  // namespace tpstream

#endif  // TPSTREAM_EXPR_BYTECODE_H_
