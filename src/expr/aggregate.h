#ifndef TPSTREAM_EXPR_AGGREGATE_H_
#define TPSTREAM_EXPR_AGGREGATE_H_

#include <optional>
#include <string>
#include <vector>

#include "ckpt/serde.h"
#include "common/event.h"
#include "common/status.h"
#include "common/value.h"

namespace tpstream {

/// Incremental aggregate functions applied to the event subsequence of a
/// situation (gamma in Definition 6) and referenced in RETURN clauses.
enum class AggKind : uint8_t {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kFirst,
  kLast,
};

const char* AggKindName(AggKind kind);
std::optional<AggKind> AggKindFromName(const std::string& name);

/// One aggregate to compute: `kind` over input field `field` (ignored for
/// kCount). `name` labels the resulting situation-payload attribute.
struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  int field = -1;
  std::string name;
};

/// Incremental state of a single aggregate. Plain tagged struct; no
/// virtual dispatch on the per-event path.
class AggregateState {
 public:
  explicit AggregateState(const AggregateSpec& spec) : spec_(spec) {}

  /// Starts a new situation with its first event's payload.
  void Init(const Tuple& tuple);

  /// Folds one more event into the running aggregate.
  void Update(const Tuple& tuple);

  /// Current aggregate value (valid after Init).
  Value Result() const;

  /// Serializes the running state (count / sum / extremum value); the
  /// spec is configuration and comes from the restoring instance.
  void Checkpoint(ckpt::Writer& w) const {
    w.I64(count_);
    w.F64(sum_);
    w.WriteValue(value_);
  }
  void Restore(ckpt::Reader& r) {
    count_ = r.I64();
    sum_ = r.F64();
    value_ = r.ReadValue();
  }

 private:
  Value Input(const Tuple& tuple) const {
    if (spec_.field < 0 || spec_.field >= static_cast<int>(tuple.size())) {
      return Value::Null();
    }
    return tuple[spec_.field];
  }

  AggregateSpec spec_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  Value value_;  // min / max / first / last, depending on kind
};

/// The aggregate battery of one situation definition: computes the payload
/// tuple of derived situations.
class AggregatorSet {
 public:
  explicit AggregatorSet(std::vector<AggregateSpec> specs);

  void Init(const Tuple& tuple);
  void Update(const Tuple& tuple);

  /// Snapshot of all aggregate values, in spec order.
  Tuple Snapshot() const;

  void Checkpoint(ckpt::Writer& w) const;
  Status Restore(ckpt::Reader& r);

  const std::vector<AggregateSpec>& specs() const { return specs_; }

 private:
  std::vector<AggregateSpec> specs_;
  std::vector<AggregateState> states_;
};

}  // namespace tpstream

#endif  // TPSTREAM_EXPR_AGGREGATE_H_
