#include "expr/expression.h"

#include <cstdio>
#include <cstring>

namespace tpstream {

namespace {

/// Canonical literal encoding: type tag plus an exact, locale-free
/// rendering. Doubles use their IEEE-754 bit pattern (hex) so that
/// 0.1's shortest decimal form vs a longer spelling can never alias.
void AppendValueFingerprint(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->append("n");
      return;
    case ValueType::kInt:
      out->append("i").append(std::to_string(v.AsInt()));
      return;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      char buf[19];
      std::snprintf(buf, sizeof(buf), "d%016llx",
                    static_cast<unsigned long long>(bits));
      out->append(buf);
      return;
    }
    case ValueType::kBool:
      out->append(v.AsBool() ? "b1" : "b0");
      return;
    case ValueType::kString:
      // Length-prefixed so no string content can fake tree structure.
      out->append("s")
          .append(std::to_string(v.AsString().size()))
          .append(":")
          .append(v.AsString());
      return;
  }
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

namespace {

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value Eval(const Tuple&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void AppendFingerprint(std::string* out) const override {
    AppendValueFingerprint(value_, out);
  }
  void Accept(ExpressionVisitor* visitor) const override {
    visitor->VisitLiteral(value_);
  }

 private:
  Value value_;
};

class FieldRefExpr final : public Expression {
 public:
  FieldRefExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}
  Value Eval(const Tuple& tuple) const override {
    if (index_ < 0 || index_ >= static_cast<int>(tuple.size())) {
      return Value::Null();
    }
    return tuple[index_];
  }
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }
  void AppendFingerprint(std::string* out) const override {
    // Positional only: the name is a diagnostic label; evaluation reads
    // tuple[index_] regardless of what the field was called.
    out->append("$").append(std::to_string(index_));
  }
  void Accept(ExpressionVisitor* visitor) const override {
    visitor->VisitFieldRef(index_, name_);
  }

 private:
  int index_;
  std::string name_;
};

class BinaryExpr final : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Tuple& tuple) const override {
    // Short-circuit logical operators.
    if (op_ == BinaryOp::kAnd) {
      if (!lhs_->Eval(tuple).Truthy()) return Value(false);
      return Value(rhs_->Eval(tuple).Truthy());
    }
    if (op_ == BinaryOp::kOr) {
      if (lhs_->Eval(tuple).Truthy()) return Value(true);
      return Value(rhs_->Eval(tuple).Truthy());
    }
    const Value a = lhs_->Eval(tuple);
    const Value b = rhs_->Eval(tuple);
    switch (op_) {
      case BinaryOp::kAdd:
        return Add(a, b);
      case BinaryOp::kSub:
        return Sub(a, b);
      case BinaryOp::kMul:
        return Mul(a, b);
      case BinaryOp::kDiv:
        return Div(a, b);
      default:
        break;
    }
    const int cmp = Value::Compare(a, b);
    if (cmp == Value::kIncomparable) {
      // Incomparable values only satisfy explicit inequality of
      // equal-typed values; treat as null (falsy) for robustness.
      return Value::Null();
    }
    switch (op_) {
      case BinaryOp::kEq:
        return Value(cmp == 0);
      case BinaryOp::kNe:
        return Value(cmp != 0);
      case BinaryOp::kLt:
        return Value(cmp < 0);
      case BinaryOp::kLe:
        return Value(cmp <= 0);
      case BinaryOp::kGt:
        return Value(cmp > 0);
      case BinaryOp::kGe:
        return Value(cmp >= 0);
      default:
        return Value::Null();
    }
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

  void AppendFingerprint(std::string* out) const override {
    out->append("(")
        .append(std::to_string(static_cast<int>(op_)))
        .append(" ");
    lhs_->AppendFingerprint(out);
    out->append(" ");
    rhs_->AppendFingerprint(out);
    out->append(")");
  }

  void Accept(ExpressionVisitor* visitor) const override {
    visitor->VisitBinary(op_, *lhs_, *rhs_);
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr final : public Expression {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Value Eval(const Tuple& tuple) const override {
    return Value(!operand_->Eval(tuple).Truthy());
  }
  std::string ToString() const override {
    return "NOT " + operand_->ToString();
  }
  void AppendFingerprint(std::string* out) const override {
    out->append("!(");
    operand_->AppendFingerprint(out);
    out->append(")");
  }
  void Accept(ExpressionVisitor* visitor) const override {
    visitor->VisitNot(*operand_);
  }

 private:
  ExprPtr operand_;
};

class NegateExpr final : public Expression {
 public:
  explicit NegateExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Value Eval(const Tuple& tuple) const override {
    const Value v = operand_->Eval(tuple);
    if (v.type() == ValueType::kInt) return Value(WrapNeg(v.AsInt()));
    if (v.type() == ValueType::kDouble) return Value(-v.AsDouble());
    return Value::Null();
  }
  std::string ToString() const override { return "-" + operand_->ToString(); }
  void AppendFingerprint(std::string* out) const override {
    out->append("~(");
    operand_->AppendFingerprint(out);
    out->append(")");
  }
  void Accept(ExpressionVisitor* visitor) const override {
    visitor->VisitNegate(*operand_);
  }

 private:
  ExprPtr operand_;
};

}  // namespace

std::string ExprFingerprint(const Expression& expr) {
  std::string out;
  expr.AppendFingerprint(&out);
  return out;
}

ExprPtr Literal(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

ExprPtr FieldRef(int index, std::string name) {
  return std::make_shared<FieldRefExpr>(index, std::move(name));
}

Result<ExprPtr> FieldRef(const Schema& schema, const std::string& name) {
  const int idx = schema.IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("unknown field: " + name);
  }
  return ExprPtr(std::make_shared<FieldRefExpr>(idx, name));
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Not(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}

ExprPtr Negate(ExprPtr operand) {
  return std::make_shared<NegateExpr>(std::move(operand));
}

}  // namespace tpstream
