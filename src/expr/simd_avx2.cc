// 256-bit kernel tier. This TU is the only one compiled with -mavx2
// (see src/expr/CMakeLists.txt), and is only ever entered through the
// KernelsFor dispatch after __builtin_cpu_supports("avx2") passes — so
// AVX2 encodings cannot leak into code that runs on narrower machines.
// When the toolchain can't target AVX2 the build simply omits this TU.
#if defined(TPSTREAM_HAVE_AVX2_TU)
#define TPS_SIMD_VB 32
#define TPS_SIMD_TABLE_FN KernelsAvx2
#include "expr/simd_kernels.inc"
#endif
