#ifndef TPSTREAM_EXPR_EXPRESSION_H_
#define TPSTREAM_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <utility>

#include "common/event.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace tpstream {

class Expression;

/// Binary operators. Comparisons yield bool, arithmetic is numeric with
/// widening, kAnd/kOr operate on truthiness.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

/// Structural visitor over expression trees (Expression::Accept). One
/// Visit* callback fires per node; recursing into operands is the
/// visitor's job, so tree walks stay explicit (the bytecode compiler
/// in expr/bytecode.h is the canonical client).
class ExpressionVisitor {
 public:
  virtual ~ExpressionVisitor() = default;
  virtual void VisitLiteral(const Value& value) = 0;
  virtual void VisitFieldRef(int index, const std::string& name) = 0;
  virtual void VisitBinary(BinaryOp op, const Expression& lhs,
                           const Expression& rhs) = 0;
  virtual void VisitNot(const Expression& operand) = 0;
  virtual void VisitNegate(const Expression& operand) = 0;
};

/// Immutable, typed expression tree evaluated against a single tuple.
/// Field accesses are compiled to positional indices, so evaluation does
/// no name lookups. Used for situation predicates (DEFINE clause).
class Expression {
 public:
  virtual ~Expression() = default;

  /// Evaluates against `tuple`. Type errors yield a null Value, which
  /// predicates treat as false; the hot path never throws.
  virtual Value Eval(const Tuple& tuple) const = 0;

  virtual std::string ToString() const = 0;

  /// Dispatches exactly one Visit* callback for this node (not the
  /// subtree; see ExpressionVisitor).
  virtual void Accept(ExpressionVisitor* visitor) const = 0;

  /// Appends a canonical structural encoding of this subtree to `out`.
  /// Unlike ToString(), the encoding is name-free (field references
  /// encode their positional index only — names are diagnostics) and
  /// literal values are type-tagged and bit-exact, so two trees encode
  /// equally iff they are structurally identical and therefore evaluate
  /// identically on every tuple. Used by the multi-query engine
  /// (src/multi) to deduplicate situation definitions; equal encodings
  /// imply equal semantics, while semantically equal but structurally
  /// different trees (e.g. commuted operands) may encode differently —
  /// that only costs sharing, never correctness.
  virtual void AppendFingerprint(std::string* out) const = 0;
};

using ExprPtr = std::shared_ptr<const Expression>;

/// The canonical structural encoding of `expr` (see AppendFingerprint).
std::string ExprFingerprint(const Expression& expr);

// --- Factory functions (the public way to build expression trees) -------

/// A constant.
ExprPtr Literal(Value v);
inline ExprPtr Literal(double v) { return Literal(Value(v)); }
inline ExprPtr Literal(int64_t v) { return Literal(Value(v)); }
inline ExprPtr Literal(bool v) { return Literal(Value(v)); }

/// Positional field access; `name` is only used for diagnostics.
ExprPtr FieldRef(int index, std::string name = "");

/// Named field access resolved against `schema`.
Result<ExprPtr> FieldRef(const Schema& schema, const std::string& name);

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);
ExprPtr Negate(ExprPtr operand);

inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kOr, std::move(a), std::move(b));
}

/// Convenience: evaluates `expr` as a predicate (null/non-truthy = false).
inline bool EvalPredicate(const Expression& expr, const Tuple& tuple) {
  return expr.Eval(tuple).Truthy();
}

}  // namespace tpstream

#endif  // TPSTREAM_EXPR_EXPRESSION_H_
