#include "expr/bytecode.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace tpstream {

namespace {

constexpr int kMaxOperand = 0xFFFF;

// --- Unboxed Value operations, mirrored from common/value.cc ------------
// Every branch below is the RegSlot transliteration of the corresponding
// Value operation; the differential fuzzer holds the two in lockstep.

inline bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

inline double SlotToDouble(const RegSlot& s) {
  // Only reached with numeric slots (arithmetic guards on IsNumeric),
  // mirroring Value::ToDouble on the int/double cases.
  return s.type == ValueType::kInt ? static_cast<double>(s.v.i) : s.v.d;
}

inline bool SlotTruthy(const RegSlot& s) {
  switch (s.type) {
    case ValueType::kBool:
      return s.v.b;
    case ValueType::kInt:
      return s.v.i != 0;
    case ValueType::kDouble:
      return s.v.d != 0.0;
    default:
      return false;  // null and string, like Value::Truthy
  }
}

inline RegSlot IntSlot(int64_t v) {
  RegSlot s;
  s.type = ValueType::kInt;
  s.v.i = v;
  return s;
}

inline RegSlot DoubleSlot(double v) {
  RegSlot s;
  s.type = ValueType::kDouble;
  s.v.d = v;
  return s;
}

inline RegSlot BoolSlot(bool v) {
  RegSlot s;
  s.type = ValueType::kBool;
  s.v.b = v;
  return s;
}

inline RegSlot SlotFromValue(const Value& v) {
  RegSlot s;
  s.type = v.type();
  switch (v.type()) {
    case ValueType::kInt:
      s.v.i = v.AsInt();
      break;
    case ValueType::kDouble:
      s.v.d = v.AsDouble();
      break;
    case ValueType::kBool:
      s.v.b = v.AsBool();
      break;
    case ValueType::kString:
      s.v.s = &v.AsString();
      break;
    case ValueType::kNull:
      break;
  }
  return s;
}

inline Value SlotToValue(const RegSlot& s) {
  switch (s.type) {
    case ValueType::kInt:
      return Value(s.v.i);
    case ValueType::kDouble:
      return Value(s.v.d);
    case ValueType::kBool:
      return Value(s.v.b);
    case ValueType::kString:
      return Value(*s.v.s);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

inline RegSlot LoadTupleField(const Tuple& tuple, int field) {
  if (field >= static_cast<int>(tuple.size())) return RegSlot{};
  return SlotFromValue(tuple[field]);
}

template <typename IntOp, typename DoubleOp>
inline RegSlot NumericSlotOp(const RegSlot& a, const RegSlot& b,
                             IntOp int_op, DoubleOp double_op) {
  if (!IsNumeric(a.type) || !IsNumeric(b.type)) return RegSlot{};
  if (a.type == ValueType::kInt && b.type == ValueType::kInt) {
    return IntSlot(int_op(a.v.i, b.v.i));
  }
  return DoubleSlot(double_op(SlotToDouble(a), SlotToDouble(b)));
}

inline RegSlot SlotDiv(const RegSlot& a, const RegSlot& b) {
  if (!IsNumeric(a.type) || !IsNumeric(b.type)) return RegSlot{};
  const double y = SlotToDouble(b);
  if (y == 0.0) return RegSlot{};
  return DoubleSlot(SlotToDouble(a) / y);
}

// Value::Compare transliterated to slots.
inline int SlotCompare(const RegSlot& a, const RegSlot& b) {
  if (a.type == ValueType::kNull || b.type == ValueType::kNull) {
    return Value::kIncomparable;
  }
  if (IsNumeric(a.type) && IsNumeric(b.type)) {
    if (a.type == ValueType::kInt && b.type == ValueType::kInt) {
      return a.v.i < b.v.i ? -1 : (a.v.i > b.v.i ? 1 : 0);
    }
    const double x = SlotToDouble(a);
    const double y = SlotToDouble(b);
    if (std::isnan(x) || std::isnan(y)) return Value::kIncomparable;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type != b.type) return Value::kIncomparable;
  switch (a.type) {
    case ValueType::kBool:
      return (a.v.b ? 1 : 0) - (b.v.b ? 1 : 0);
    case ValueType::kString: {
      const int c = a.v.s->compare(*b.v.s);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Value::kIncomparable;
  }
}

inline RegSlot SlotCmp(OpCode op, const RegSlot& a, const RegSlot& b) {
  const int cmp = SlotCompare(a, b);
  if (cmp == Value::kIncomparable) return RegSlot{};  // null, falsy
  switch (op) {
    case OpCode::kCmpEq:
      return BoolSlot(cmp == 0);
    case OpCode::kCmpNe:
      return BoolSlot(cmp != 0);
    case OpCode::kCmpLt:
      return BoolSlot(cmp < 0);
    case OpCode::kCmpLe:
      return BoolSlot(cmp <= 0);
    case OpCode::kCmpGt:
      return BoolSlot(cmp > 0);
    default:
      return BoolSlot(cmp >= 0);  // kCmpGe
  }
}

/// The plain comparison a fused field-vs-const opcode stands for; relies
/// on the two enum blocks sharing order and being contiguous.
inline OpCode FusedCmpBase(OpCode op) {
  return static_cast<OpCode>(static_cast<int>(OpCode::kCmpEq) +
                             (static_cast<int>(op) -
                              static_cast<int>(OpCode::kCmpEqFC)));
}

/// Strided comparison loop for the columnar executor: the opcode switch
/// runs once per batch (selecting `pred`), not once per row. Stride 0
/// broadcasts a scalar (a fused constant, or a null for an absent
/// column).
template <typename Pred>
inline void CmpLoop(const RegSlot* a, size_t a_stride, const RegSlot* b,
                    size_t b_stride, RegSlot* d, size_t rows, Pred pred) {
  for (size_t r = 0; r < rows; ++r) {
    const int c = SlotCompare(a[r * a_stride], b[r * b_stride]);
    d[r] = c == Value::kIncomparable ? RegSlot{} : BoolSlot(pred(c));
  }
}

inline void CmpColumns(OpCode base, const RegSlot* a, size_t a_stride,
                       const RegSlot* b, size_t b_stride, RegSlot* d,
                       size_t rows) {
  switch (base) {
    case OpCode::kCmpEq:
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c == 0; });
      break;
    case OpCode::kCmpNe:
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c != 0; });
      break;
    case OpCode::kCmpLt:
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c < 0; });
      break;
    case OpCode::kCmpLe:
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c <= 0; });
      break;
    case OpCode::kCmpGt:
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c > 0; });
      break;
    default:  // kCmpGe
      CmpLoop(a, a_stride, b, b_stride, d, rows,
              [](int c) { return c >= 0; });
      break;
  }
}

// --- Type-specialized columnar kernels ----------------------------------
// Selected when a column's ColClass proves every slot shares a type; each
// kernel is elementwise-exact, so class tracking can be conservative.

inline ColClass ClassOfType(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return ColClass::kInt;
    case ValueType::kDouble:
      return ColClass::kDouble;
    case ValueType::kBool:
      return ColClass::kBool;
    default:
      return ColClass::kMixed;
  }
}

/// Instantiates `f` with the relational predicate `base` stands for, as a
/// generic lambda — int64 pairs compare in the integer domain, widened
/// pairs as doubles, exactly like SlotCompare's two numeric branches.
template <typename F>
inline void WithCmpPred(OpCode base, F f) {
  switch (base) {
    case OpCode::kCmpEq:
      f([](auto x, auto y) { return x == y; });
      break;
    case OpCode::kCmpNe:
      f([](auto x, auto y) { return x != y; });
      break;
    case OpCode::kCmpLt:
      f([](auto x, auto y) { return x < y; });
      break;
    case OpCode::kCmpLe:
      f([](auto x, auto y) { return x <= y; });
      break;
    case OpCode::kCmpGt:
      f([](auto x, auto y) { return x > y; });
      break;
    default:  // kCmpGe
      f([](auto x, auto y) { return x >= y; });
      break;
  }
}

template <typename Pred>
inline void CmpLoopII(const RegSlot* a, const RegSlot* b, size_t bs,
                      RegSlot* d, size_t rows, Pred pred) {
  for (size_t r = 0; r < rows; ++r) {
    d[r] = BoolSlot(pred(a[r].v.i, b[r * bs].v.i));
  }
}

/// Widened numeric comparison; the NaN guard reproduces SlotCompare's
/// incomparable (null) result bit-for-bit. The `*_int` flags are
/// loop-invariant, so the conversions hoist.
template <typename Pred>
inline void CmpLoopNumeric(const RegSlot* a, bool a_int, const RegSlot* b,
                           size_t bs, bool b_int, RegSlot* d, size_t rows,
                           Pred pred) {
  for (size_t r = 0; r < rows; ++r) {
    const double x = a_int ? static_cast<double>(a[r].v.i) : a[r].v.d;
    const double y =
        b_int ? static_cast<double>(b[r * bs].v.i) : b[r * bs].v.d;
    d[r] = (x != x || y != y) ? RegSlot{} : BoolSlot(pred(x, y));
  }
}

template <typename Pred>
inline void CmpLoopBB(const RegSlot* a, const RegSlot* b, size_t bs,
                      RegSlot* d, size_t rows, Pred pred) {
  for (size_t r = 0; r < rows; ++r) {
    // SlotCompare on two bools is (a?1:0) - (b?1:0); eq/ne reduce to the
    // direct bool comparison.
    d[r] = BoolSlot(pred(a[r].v.b ? 1 : 0, b[r * bs].v.b ? 1 : 0));
  }
}

/// Fast comparison over typed columns. Returns false when no specialized
/// kernel applies (caller falls back to the generic loop); on success
/// *result_class is the uniformity class of `d` (kBool when no row can
/// be null — int/int and bool eq/ne — else kMixed, since widened NaN
/// rows produce nulls).
inline bool CmpColumnsFast(OpCode base, const RegSlot* a, ColClass ac,
                           const RegSlot* b, size_t bs, ColClass bc,
                           RegSlot* d, size_t rows,
                           ColClass* result_class) {
  if (ac == ColClass::kBool && bc == ColClass::kBool &&
      (base == OpCode::kCmpEq || base == OpCode::kCmpNe)) {
    if (base == OpCode::kCmpEq) {
      CmpLoopBB(a, b, bs, d, rows, [](int x, int y) { return x == y; });
    } else {
      CmpLoopBB(a, b, bs, d, rows, [](int x, int y) { return x != y; });
    }
    *result_class = ColClass::kBool;
    return true;
  }
  const bool a_num = ac == ColClass::kInt || ac == ColClass::kDouble;
  const bool b_num = bc == ColClass::kInt || bc == ColClass::kDouble;
  if (!a_num || !b_num) return false;
  if (ac == ColClass::kInt && bc == ColClass::kInt) {
    WithCmpPred(base,
                [&](auto pred) { CmpLoopII(a, b, bs, d, rows, pred); });
    *result_class = ColClass::kBool;
  } else {
    WithCmpPred(base, [&](auto pred) {
      CmpLoopNumeric(a, ac == ColClass::kInt, b, bs, bc == ColClass::kInt,
                     d, rows, pred);
    });
    *result_class = ColClass::kMixed;
  }
  return true;
}

/// Widening add/sub/mul over numeric columns (at least one double):
/// always produces doubles, NaN/inf propagating exactly as the scalar
/// double op does.
template <typename DoubleOp>
inline void ArithWidenLoop(const RegSlot* a, bool a_int, const RegSlot* b,
                           bool b_int, RegSlot* d, size_t rows,
                           DoubleOp op) {
  for (size_t r = 0; r < rows; ++r) {
    const double x = a_int ? static_cast<double>(a[r].v.i) : a[r].v.d;
    const double y = b_int ? static_cast<double>(b[r].v.i) : b[r].v.d;
    d[r] = DoubleSlot(op(x, y));
  }
}

}  // namespace

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst:
      return "load_const";
    case OpCode::kLoadField:
      return "load_field";
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kCmpEq:
      return "cmp_eq";
    case OpCode::kCmpNe:
      return "cmp_ne";
    case OpCode::kCmpLt:
      return "cmp_lt";
    case OpCode::kCmpLe:
      return "cmp_le";
    case OpCode::kCmpGt:
      return "cmp_gt";
    case OpCode::kCmpGe:
      return "cmp_ge";
    case OpCode::kTruthy:
      return "truthy";
    case OpCode::kNot:
      return "not";
    case OpCode::kNeg:
      return "neg";
    case OpCode::kJump:
      return "jump";
    case OpCode::kJumpIfFalsy:
      return "jump_if_falsy";
    case OpCode::kJumpIfTruthy:
      return "jump_if_truthy";
    case OpCode::kRet:
      return "ret";
    case OpCode::kCmpEqFC:
      return "cmp_eq_fc";
    case OpCode::kCmpNeFC:
      return "cmp_ne_fc";
    case OpCode::kCmpLtFC:
      return "cmp_lt_fc";
    case OpCode::kCmpLeFC:
      return "cmp_le_fc";
    case OpCode::kCmpGtFC:
      return "cmp_gt_fc";
    case OpCode::kCmpGeFC:
      return "cmp_ge_fc";
    case OpCode::kAndEager:
      return "and_eager";
    case OpCode::kOrEager:
      return "or_eager";
  }
  return "?";
}

// --- ColumnarBatch ------------------------------------------------------

void ColumnarBatch::Assign(std::span<const Event> events,
                           const std::vector<int>& fields) {
  rows_ = events.size();
  const int max_field = fields.empty() ? -1 : fields.back();
  col_of_field_.assign(max_field + 1, -1);
  if (columns_.size() < fields.size()) {
    columns_.resize(fields.size());
    typed_i64_.resize(fields.size());
    typed_f64_.resize(fields.size());
    typed_u8_.resize(fields.size());
  }
  col_class_.assign(fields.size(), ColClass::kMixed);
  for (size_t c = 0; c < fields.size(); ++c) {
    const int f = fields[c];
    col_of_field_[f] = static_cast<int>(c);
    std::vector<RegSlot>& col = columns_[c];
    col.resize(rows_);
    bool uniform = rows_ > 0;
    for (size_t row = 0; row < rows_; ++row) {
      col[row] = LoadTupleField(events[row].payload, f);
      uniform &= col[row].type == col[0].type;
    }
    if (uniform) col_class_[c] = ClassOfType(col[0].type);
    // SoA mirror for uniformly-typed columns: a dense value array the
    // SIMD kernels load directly (bool as 0/1 bytes), no nulls by
    // construction.
    switch (col_class_[c]) {
      case ColClass::kInt: {
        std::vector<int64_t>& t = typed_i64_[c];
        t.resize(rows_);
        for (size_t row = 0; row < rows_; ++row) t[row] = col[row].v.i;
        break;
      }
      case ColClass::kDouble: {
        std::vector<double>& t = typed_f64_[c];
        t.resize(rows_);
        for (size_t row = 0; row < rows_; ++row) t[row] = col[row].v.d;
        break;
      }
      case ColClass::kBool: {
        std::vector<uint8_t>& t = typed_u8_[c];
        t.resize(rows_);
        for (size_t row = 0; row < rows_; ++row) {
          t[row] = col[row].v.b ? 1 : 0;
        }
        break;
      }
      case ColClass::kMixed:
        break;
    }
  }
}

// --- Execution ----------------------------------------------------------

template <typename FieldLoader>
RegSlot BytecodeProgram::Exec(ExecScratch* scratch,
                              const FieldLoader& load) const {
  if (static_cast<int>(scratch->regs.size()) < num_regs_) {
    scratch->regs.resize(num_regs_);
  }
  RegSlot* regs = scratch->regs.data();
  const Instr* code = code_.data();
  const RegSlot* consts = const_slots_.data();
  size_t pc = 0;
  for (;;) {
    const Instr in = code[pc];
    switch (in.op) {
      case OpCode::kLoadConst:
        regs[in.dst] = consts[in.a];
        break;
      case OpCode::kLoadField:
        regs[in.dst] = load(in.a);
        break;
      case OpCode::kAdd:
        regs[in.dst] = NumericSlotOp(
            regs[in.a], regs[in.b], WrapAdd,
            [](double x, double y) { return x + y; });
        break;
      case OpCode::kSub:
        regs[in.dst] = NumericSlotOp(
            regs[in.a], regs[in.b], WrapSub,
            [](double x, double y) { return x - y; });
        break;
      case OpCode::kMul:
        regs[in.dst] = NumericSlotOp(
            regs[in.a], regs[in.b], WrapMul,
            [](double x, double y) { return x * y; });
        break;
      case OpCode::kDiv:
        regs[in.dst] = SlotDiv(regs[in.a], regs[in.b]);
        break;
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe:
        regs[in.dst] = SlotCmp(in.op, regs[in.a], regs[in.b]);
        break;
      case OpCode::kCmpEqFC:
      case OpCode::kCmpNeFC:
      case OpCode::kCmpLtFC:
      case OpCode::kCmpLeFC:
      case OpCode::kCmpGtFC:
      case OpCode::kCmpGeFC:
        regs[in.dst] = SlotCmp(FusedCmpBase(in.op), load(in.a), consts[in.b]);
        break;
      case OpCode::kAndEager:
        regs[in.dst] =
            BoolSlot(SlotTruthy(regs[in.a]) && SlotTruthy(regs[in.b]));
        break;
      case OpCode::kOrEager:
        regs[in.dst] =
            BoolSlot(SlotTruthy(regs[in.a]) || SlotTruthy(regs[in.b]));
        break;
      case OpCode::kTruthy:
        regs[in.dst] = BoolSlot(SlotTruthy(regs[in.a]));
        break;
      case OpCode::kNot:
        regs[in.dst] = BoolSlot(!SlotTruthy(regs[in.a]));
        break;
      case OpCode::kNeg: {
        const RegSlot& src = regs[in.a];
        if (src.type == ValueType::kInt) {
          regs[in.dst] = IntSlot(WrapNeg(src.v.i));
        } else if (src.type == ValueType::kDouble) {
          regs[in.dst] = DoubleSlot(-src.v.d);
        } else {
          regs[in.dst] = RegSlot{};
        }
        break;
      }
      case OpCode::kJump:
        pc = in.b;
        continue;
      case OpCode::kJumpIfFalsy:
        if (!SlotTruthy(regs[in.a])) {
          pc = in.b;
          continue;
        }
        break;
      case OpCode::kJumpIfTruthy:
        if (SlotTruthy(regs[in.a])) {
          pc = in.b;
          continue;
        }
        break;
      case OpCode::kRet:
        return regs[in.a];
    }
    ++pc;
  }
}

Value BytecodeProgram::Run(const Tuple& tuple, ExecScratch* scratch) const {
  return SlotToValue(
      Exec(scratch, [&](int f) { return LoadTupleField(tuple, f); }));
}

Value BytecodeProgram::Run(const Tuple& tuple) const {
  ExecScratch scratch;
  return Run(tuple, &scratch);
}

bool BytecodeProgram::RunPredicate(const Tuple& tuple,
                                   ExecScratch* scratch) const {
  return SlotTruthy(
      Exec(scratch, [&](int f) { return LoadTupleField(tuple, f); }));
}

bool BytecodeProgram::RunPredicate(const Tuple& tuple) const {
  ExecScratch scratch;
  return RunPredicate(tuple, &scratch);
}

namespace {

/// One non-control-flow instruction of the flat stream over the AoS
/// (RegSlot-column) register file. This is the scalar columnar
/// executor's body, and doubles as the SoA executor's per-instruction
/// fallback for mixed-typed registers — shared so the two paths cannot
/// drift semantically.
void ExecColumnInstr(const Instr& in, const ColumnarBatch& batch,
                     const RegSlot* consts, RegSlot* regs, ColClass* rc,
                     size_t rows) {
  const RegSlot null_slot{};
  RegSlot* const d = regs + static_cast<size_t>(in.dst) * rows;
  {
    switch (in.op) {
      case OpCode::kLoadConst: {
        const RegSlot k = consts[in.a];
        std::fill(d, d + rows, k);
        rc[in.dst] = ClassOfType(k.type);
        break;
      }
      case OpCode::kLoadField: {
        const RegSlot* src = batch.ColumnPtr(in.a);
        if (src != nullptr) {
          std::copy(src, src + rows, d);
          rc[in.dst] = batch.ColumnClass(in.a);
        } else {
          std::fill(d, d + rows, null_slot);
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        const RegSlot* b = regs + static_cast<size_t>(in.b) * rows;
        const ColClass ac = rc[in.a];
        const ColClass bc = rc[in.b];
        if (ac == ColClass::kInt && bc == ColClass::kInt) {
          if (in.op == OpCode::kAdd) {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = IntSlot(WrapAdd(a[r].v.i, b[r].v.i));
            }
          } else if (in.op == OpCode::kSub) {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = IntSlot(WrapSub(a[r].v.i, b[r].v.i));
            }
          } else {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = IntSlot(WrapMul(a[r].v.i, b[r].v.i));
            }
          }
          rc[in.dst] = ColClass::kInt;
        } else if ((ac == ColClass::kInt || ac == ColClass::kDouble) &&
                   (bc == ColClass::kInt || bc == ColClass::kDouble)) {
          const bool ai = ac == ColClass::kInt;
          const bool bi = bc == ColClass::kInt;
          if (in.op == OpCode::kAdd) {
            ArithWidenLoop(a, ai, b, bi, d, rows,
                           [](double x, double y) { return x + y; });
          } else if (in.op == OpCode::kSub) {
            ArithWidenLoop(a, ai, b, bi, d, rows,
                           [](double x, double y) { return x - y; });
          } else {
            ArithWidenLoop(a, ai, b, bi, d, rows,
                           [](double x, double y) { return x * y; });
          }
          rc[in.dst] = ColClass::kDouble;
        } else {
          if (in.op == OpCode::kAdd) {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = NumericSlotOp(a[r], b[r], WrapAdd,
                                   [](double x, double y) { return x + y; });
            }
          } else if (in.op == OpCode::kSub) {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = NumericSlotOp(a[r], b[r], WrapSub,
                                   [](double x, double y) { return x - y; });
            }
          } else {
            for (size_t r = 0; r < rows; ++r) {
              d[r] = NumericSlotOp(a[r], b[r], WrapMul,
                                   [](double x, double y) { return x * y; });
            }
          }
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kDiv: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        const RegSlot* b = regs + static_cast<size_t>(in.b) * rows;
        if (rc[in.a] == ColClass::kDouble && rc[in.b] == ColClass::kDouble) {
          bool saw_zero = false;
          for (size_t r = 0; r < rows; ++r) {
            const double y = b[r].v.d;
            saw_zero |= y == 0.0;
            d[r] = y == 0.0 ? RegSlot{} : DoubleSlot(a[r].v.d / y);
          }
          rc[in.dst] = saw_zero ? ColClass::kMixed : ColClass::kDouble;
        } else {
          for (size_t r = 0; r < rows; ++r) d[r] = SlotDiv(a[r], b[r]);
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        const RegSlot* b = regs + static_cast<size_t>(in.b) * rows;
        const ColClass ac = rc[in.a];
        const ColClass bc = rc[in.b];
        if (ColClass cls; CmpColumnsFast(in.op, a, ac, b, 1, bc, d, rows,
                                         &cls)) {
          rc[in.dst] = cls;
        } else {
          CmpColumns(in.op, a, 1, b, 1, d, rows);
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kCmpEqFC:
      case OpCode::kCmpNeFC:
      case OpCode::kCmpLtFC:
      case OpCode::kCmpLeFC:
      case OpCode::kCmpGtFC:
      case OpCode::kCmpGeFC: {
        const OpCode base = FusedCmpBase(in.op);
        const RegSlot k = consts[in.b];
        const RegSlot* src = batch.ColumnPtr(in.a);
        if (src == nullptr) {
          CmpColumns(base, &null_slot, 0, &k, 0, d, rows);
          rc[in.dst] = ColClass::kMixed;
          break;
        }
        const ColClass sc = batch.ColumnClass(in.a);
        const ColClass kc = ClassOfType(k.type);
        if (ColClass cls; CmpColumnsFast(base, src, sc, &k, 0, kc, d, rows,
                                         &cls)) {
          rc[in.dst] = cls;
        } else {
          CmpColumns(base, src, 1, &k, 0, d, rows);
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kTruthy: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        switch (rc[in.a]) {
          case ColClass::kBool:
            std::copy(a, a + rows, d);
            break;
          case ColClass::kInt:
            for (size_t r = 0; r < rows; ++r) {
              d[r] = BoolSlot(a[r].v.i != 0);
            }
            break;
          case ColClass::kDouble:
            // NaN != 0.0 is true, exactly SlotTruthy on a NaN double.
            for (size_t r = 0; r < rows; ++r) {
              d[r] = BoolSlot(a[r].v.d != 0.0);
            }
            break;
          default:
            for (size_t r = 0; r < rows; ++r) {
              d[r] = BoolSlot(SlotTruthy(a[r]));
            }
            break;
        }
        rc[in.dst] = ColClass::kBool;
        break;
      }
      case OpCode::kNot: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        if (rc[in.a] == ColClass::kBool) {
          for (size_t r = 0; r < rows; ++r) d[r] = BoolSlot(!a[r].v.b);
        } else {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = BoolSlot(!SlotTruthy(a[r]));
          }
        }
        rc[in.dst] = ColClass::kBool;
        break;
      }
      case OpCode::kNeg: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        if (rc[in.a] == ColClass::kDouble) {
          for (size_t r = 0; r < rows; ++r) d[r] = DoubleSlot(-a[r].v.d);
          rc[in.dst] = ColClass::kDouble;
        } else if (rc[in.a] == ColClass::kInt) {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = IntSlot(WrapNeg(a[r].v.i));
          }
          rc[in.dst] = ColClass::kInt;
        } else {
          for (size_t r = 0; r < rows; ++r) {
            const RegSlot& src = a[r];
            if (src.type == ValueType::kInt) {
              d[r] = IntSlot(WrapNeg(src.v.i));
            } else if (src.type == ValueType::kDouble) {
              d[r] = DoubleSlot(-src.v.d);
            } else {
              d[r] = RegSlot{};
            }
          }
          rc[in.dst] = ColClass::kMixed;
        }
        break;
      }
      case OpCode::kAndEager: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        const RegSlot* b = regs + static_cast<size_t>(in.b) * rows;
        if (rc[in.a] == ColClass::kBool && rc[in.b] == ColClass::kBool) {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = BoolSlot(a[r].v.b && b[r].v.b);
          }
        } else {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = BoolSlot(SlotTruthy(a[r]) && SlotTruthy(b[r]));
          }
        }
        rc[in.dst] = ColClass::kBool;
        break;
      }
      case OpCode::kOrEager: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        const RegSlot* b = regs + static_cast<size_t>(in.b) * rows;
        if (rc[in.a] == ColClass::kBool && rc[in.b] == ColClass::kBool) {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = BoolSlot(a[r].v.b || b[r].v.b);
          }
        } else {
          for (size_t r = 0; r < rows; ++r) {
            d[r] = BoolSlot(SlotTruthy(a[r]) || SlotTruthy(b[r]));
          }
        }
        rc[in.dst] = ColClass::kBool;
        break;
      }
      case OpCode::kRet:
      case OpCode::kJump:
      case OpCode::kJumpIfFalsy:
      case OpCode::kJumpIfTruthy:
        // Control flow is handled by the executors themselves.
        break;
    }
  }
}

}  // namespace

void BytecodeProgram::RunColumnScalar(const ColumnarBatch& batch,
                                      ExecScratch* scratch,
                                      uint8_t* out) const {
  const size_t rows = batch.num_rows();
  // Column-major register file: register r is cols[r*rows .. r*rows+rows),
  // with a uniformity class per register selecting specialized kernels.
  const size_t need = static_cast<size_t>(flat_num_regs_) * rows;
  if (scratch->cols.size() < need) scratch->cols.resize(need);
  scratch->reg_class.assign(static_cast<size_t>(flat_num_regs_),
                            ColClass::kMixed);
  RegSlot* const regs = scratch->cols.data();
  ColClass* const rc = scratch->reg_class.data();
  const RegSlot* consts = const_slots_.data();
  for (const Instr& in : flat_code_) {
    switch (in.op) {
      case OpCode::kRet: {
        const RegSlot* a = regs + static_cast<size_t>(in.a) * rows;
        if (rc[in.a] == ColClass::kBool) {
          for (size_t r = 0; r < rows; ++r) out[r] = a[r].v.b ? 1 : 0;
        } else {
          for (size_t r = 0; r < rows; ++r) {
            out[r] = SlotTruthy(a[r]) ? 1 : 0;
          }
        }
        return;
      }
      case OpCode::kJump:
      case OpCode::kJumpIfFalsy:
      case OpCode::kJumpIfTruthy: {
        // Unreachable: the flat lowering is branch-free by construction.
        // Fall back to per-row scalar execution rather than misexecute.
        for (size_t row = 0; row < rows; ++row) {
          out[row] = SlotTruthy(
              Exec(scratch, [&](int f) { return batch.Cell(f, row); }));
        }
        return;
      }
      default:
        ExecColumnInstr(in, batch, consts, regs, rc, rows);
        break;
    }
  }
}

namespace {

// --- SoA columnar executor ----------------------------------------------
// Registers hold SoaView representations (splat / dense typed column /
// AoS fallback); typed rows run through the dispatched SIMD kernel
// table, and any register that degrades to per-row typing falls back to
// ExecColumnInstr on the RegSlot register file — the exact scalar path,
// so the two executors cannot drift.
//
// Aliasing discipline: a view's pointers reference either ColumnarBatch
// storage (immutable for the run) or the register's *own* scratch
// buffers. Kernels are elementwise over a common row index, so in-place
// operation (dst == a) is safe; the one hazard is a kernel writing dst's
// null buffer while an operand's mask lives there (operand == dst), and
// GuardMask copies such masks aside first.

inline int MirrorCmpIdx(int idx) {
  switch (idx) {
    case 2:
      return 4;  // lt -> gt
    case 3:
      return 5;  // le -> ge
    case 4:
      return 2;  // gt -> lt
    case 5:
      return 3;  // ge -> le
    default:
      return idx;  // eq / ne are symmetric
  }
}

struct SoaExec {
  const simd::Kernels& K;
  const ColumnarBatch& batch;
  const RegSlot* consts;
  const size_t rows;
  RegSlot* aos;       // AoS fallback register file (scratch->cols)
  ColClass* rc;       // its per-register uniformity class
  SoaView* v;
  uint64_t* lanes;    // value lanes, rows per register
  uint8_t* bytes;     // bool/null bytes, 2*rows per register
  uint64_t* num_tmp;  // 2*rows conversion/splat lanes
  uint8_t* mask_tmp;  // 2*rows mask-copy scratch

  int64_t* OwnI64(uint16_t r) {
    return reinterpret_cast<int64_t*>(lanes + static_cast<size_t>(r) * rows);
  }
  double* OwnF64(uint16_t r) {
    return reinterpret_cast<double*>(lanes + static_cast<size_t>(r) * rows);
  }
  uint8_t* OwnVal(uint16_t r) {
    return bytes + static_cast<size_t>(2 * r) * rows;
  }
  uint8_t* OwnNull(uint16_t r) {
    return bytes + static_cast<size_t>(2 * r + 1) * rows;
  }
  double* TmpF64(int half) {
    return reinterpret_cast<double*>(num_tmp) +
           static_cast<size_t>(half) * rows;
  }
  int64_t* TmpI64(int half) {
    return reinterpret_cast<int64_t*>(num_tmp) +
           static_cast<size_t>(half) * rows;
  }

  static bool InAos(const SoaView& w) {
    return !w.splat && w.cls == ColClass::kMixed;
  }
  static bool IsNum(const SoaView& w) {
    return w.cls == ColClass::kInt || w.cls == ColClass::kDouble;
  }
  static SoaView Splat(const RegSlot& k) {
    SoaView w;
    w.splat = true;
    w.splat_val = k;
    w.cls = ClassOfType(k.type);
    return w;
  }

  void SplatOut(uint16_t dst, const RegSlot& k) { v[dst] = Splat(k); }

  void SetBool(uint16_t dst, const uint8_t* nulls) {
    SoaView w;
    w.cls = ColClass::kBool;
    w.val = OwnVal(dst);
    w.null = nulls;
    v[dst] = w;
  }
  void SetNum(uint16_t dst, ColClass cls, const uint8_t* nulls) {
    SoaView w;
    w.cls = cls;
    w.val = lanes + static_cast<size_t>(dst) * rows;
    w.null = nulls;
    v[dst] = w;
  }

  const uint8_t* NullOf(uint16_t r) const {
    return v[r].splat ? nullptr : v[r].null;
  }

  /// Materializes a register into the AoS file (no-op if already there),
  /// so ExecColumnInstr can consume it.
  void ToAos(uint16_t r) {
    const SoaView w = v[r];
    if (InAos(w)) return;
    RegSlot* d = aos + static_cast<size_t>(r) * rows;
    if (w.splat) {
      std::fill(d, d + rows, w.splat_val);
      rc[r] = ClassOfType(w.splat_val.type);
    } else {
      const uint8_t* nn = w.null;
      switch (w.cls) {
        case ColClass::kInt: {
          const int64_t* p = static_cast<const int64_t*>(w.val);
          for (size_t i = 0; i < rows; ++i) {
            d[i] = nn != nullptr && nn[i] ? RegSlot{} : IntSlot(p[i]);
          }
          break;
        }
        case ColClass::kDouble: {
          const double* p = static_cast<const double*>(w.val);
          for (size_t i = 0; i < rows; ++i) {
            d[i] = nn != nullptr && nn[i] ? RegSlot{} : DoubleSlot(p[i]);
          }
          break;
        }
        default: {  // kBool (kMixed non-splat returned above)
          const uint8_t* p = static_cast<const uint8_t*>(w.val);
          for (size_t i = 0; i < rows; ++i) {
            d[i] = nn != nullptr && nn[i] ? RegSlot{} : BoolSlot(p[i] != 0);
          }
          break;
        }
      }
      rc[r] = nn == nullptr ? w.cls : ColClass::kMixed;
    }
    v[r] = SoaView{};
  }

  void Fallback1(const Instr& in) {
    ToAos(in.a);
    ExecColumnInstr(in, batch, consts, aos, rc, rows);
    v[in.dst] = SoaView{};
  }
  void Fallback2(const Instr& in) {
    ToAos(in.a);
    ToAos(in.b);
    ExecColumnInstr(in, batch, consts, aos, rc, rows);
    v[in.dst] = SoaView{};
  }
  void FallbackFC(const Instr& in) {
    ExecColumnInstr(in, batch, consts, aos, rc, rows);
    v[in.dst] = SoaView{};
  }

  /// Register r as a dense double column (pre: IsNum): widens int lanes
  /// or fills a splat into `tmp`, otherwise returns the lanes directly.
  const double* AsF64(uint16_t r, double* tmp) {
    const SoaView& w = v[r];
    if (w.splat) {
      std::fill(tmp, tmp + rows, SlotToDouble(w.splat_val));
      return tmp;
    }
    if (w.cls == ColClass::kInt) {
      K.widen_i64(static_cast<const int64_t*>(w.val), tmp, rows);
      return tmp;
    }
    return static_cast<const double*>(w.val);
  }
  const int64_t* AsI64(uint16_t r, int64_t* tmp) {
    const SoaView& w = v[r];
    if (w.splat) {
      std::fill(tmp, tmp + rows, w.splat_val.v.i);
      return tmp;
    }
    return static_cast<const int64_t*>(w.val);
  }

  /// If mask `m` lives in dst's own null buffer (operand register == dst),
  /// copies it to `save` before a kernel overwrites that buffer.
  const uint8_t* GuardMask(const uint8_t* m, uint16_t dst, uint8_t* save) {
    if (m != nullptr && m == OwnNull(dst)) {
      std::memcpy(save, m, rows);
      return save;
    }
    return m;
  }

  /// Folds input masks (plus, when `extra`, a kernel-written mask already
  /// in OwnNull(dst)) into dst's null buffer; nullptr when no row is null.
  const uint8_t* FoldNulls(uint16_t dst, bool extra, const uint8_t* na,
                           const uint8_t* nb) {
    uint8_t* own = OwnNull(dst);
    if (!extra) {
      if (na == nullptr && nb == nullptr) return nullptr;
      if (na != nullptr && nb != nullptr) {
        K.or_bool(na, nb, own, rows);
      } else {
        const uint8_t* only = na != nullptr ? na : nb;
        if (only != own) std::memcpy(own, only, rows);
      }
    } else {
      if (na != nullptr) K.or_bool(own, na, own, rows);
      if (nb != nullptr) K.or_bool(own, nb, own, rows);
    }
    return K.any_byte(own, rows) ? own : nullptr;
  }

  /// Truthiness bytes of SoA register r (null rows fold to 0, matching
  /// Truthy(null)); pre: neither splat nor AoS. Written into `tmp`
  /// unless r's existing bytes already are exactly that.
  const uint8_t* BoolBytes(uint16_t r, uint8_t* tmp) {
    const SoaView& w = v[r];
    switch (w.cls) {
      case ColClass::kBool: {
        const uint8_t* p = static_cast<const uint8_t*>(w.val);
        if (w.null == nullptr) return p;
        K.andnot_bool(p, w.null, tmp, rows);
        return tmp;
      }
      case ColClass::kInt:
        K.truthy_i64(static_cast<const int64_t*>(w.val), tmp, rows);
        break;
      case ColClass::kDouble:
        K.truthy_f64(static_cast<const double*>(w.val), tmp, rows);
        break;
      default:
        return nullptr;  // unreachable by precondition
    }
    if (w.null != nullptr) K.andnot_bool(tmp, w.null, tmp, rows);
    return tmp;
  }

  void LoadField(const Instr& in) {
    switch (batch.ColumnClass(in.a)) {
      case ColClass::kInt: {
        SoaView w;
        w.cls = ColClass::kInt;
        w.val = batch.IntColumn(in.a);
        v[in.dst] = w;
        return;
      }
      case ColClass::kDouble: {
        SoaView w;
        w.cls = ColClass::kDouble;
        w.val = batch.DoubleColumn(in.a);
        v[in.dst] = w;
        return;
      }
      case ColClass::kBool: {
        SoaView w;
        w.cls = ColClass::kBool;
        w.val = batch.BoolColumn(in.a);
        v[in.dst] = w;
        return;
      }
      case ColClass::kMixed:
        break;
    }
    const RegSlot* src = batch.ColumnPtr(in.a);
    if (src == nullptr) {
      SplatOut(in.dst, RegSlot{});  // absent field: null on every row
      return;
    }
    RegSlot* d = aos + static_cast<size_t>(in.dst) * rows;
    std::copy(src, src + rows, d);
    rc[in.dst] = ColClass::kMixed;
    v[in.dst] = SoaView{};
  }

  static RegSlot ScalarArith(OpCode op, const RegSlot& a, const RegSlot& b) {
    switch (op) {
      case OpCode::kAdd:
        return NumericSlotOp(a, b, WrapAdd,
                             [](double x, double y) { return x + y; });
      case OpCode::kSub:
        return NumericSlotOp(a, b, WrapSub,
                             [](double x, double y) { return x - y; });
      default:  // kMul
        return NumericSlotOp(a, b, WrapMul,
                             [](double x, double y) { return x * y; });
    }
  }

  void Arith(const Instr& in) {
    const SoaView& wa = v[in.a];
    const SoaView& wb = v[in.b];
    if (wa.splat && wb.splat) {
      SplatOut(in.dst, ScalarArith(in.op, wa.splat_val, wb.splat_val));
      return;
    }
    if (InAos(wa) || InAos(wb)) {
      Fallback2(in);
      return;
    }
    if (!IsNum(wa) || !IsNum(wb)) {
      // A non-numeric operand (bool column, null/string splat) makes
      // every row null — exactly NumericSlotOp's guard.
      SplatOut(in.dst, RegSlot{});
      return;
    }
    const uint8_t* na = NullOf(in.a);
    const uint8_t* nb = NullOf(in.b);
    if (wa.cls == ColClass::kInt && wb.cls == ColClass::kInt) {
      const int64_t* pa = AsI64(in.a, TmpI64(0));
      const int64_t* pb = AsI64(in.b, TmpI64(1));
      int64_t* out = OwnI64(in.dst);
      if (in.op == OpCode::kAdd) {
        K.add_i64(pa, pb, out, rows);
      } else if (in.op == OpCode::kSub) {
        K.sub_i64(pa, pb, out, rows);
      } else {
        K.mul_i64(pa, pb, out, rows);
      }
      SetNum(in.dst, ColClass::kInt, FoldNulls(in.dst, false, na, nb));
    } else {
      const double* pa = AsF64(in.a, TmpF64(0));
      const double* pb = AsF64(in.b, TmpF64(1));
      double* out = OwnF64(in.dst);
      if (in.op == OpCode::kAdd) {
        K.add_f64(pa, pb, out, rows);
      } else if (in.op == OpCode::kSub) {
        K.sub_f64(pa, pb, out, rows);
      } else {
        K.mul_f64(pa, pb, out, rows);
      }
      SetNum(in.dst, ColClass::kDouble, FoldNulls(in.dst, false, na, nb));
    }
  }

  void Div(const Instr& in) {
    const SoaView& wa = v[in.a];
    const SoaView& wb = v[in.b];
    if (wa.splat && wb.splat) {
      SplatOut(in.dst, SlotDiv(wa.splat_val, wb.splat_val));
      return;
    }
    if (InAos(wa) || InAos(wb)) {
      Fallback2(in);
      return;
    }
    if (!IsNum(wa) || !IsNum(wb)) {
      SplatOut(in.dst, RegSlot{});
      return;
    }
    const uint8_t* na = GuardMask(NullOf(in.a), in.dst, mask_tmp);
    const uint8_t* nb = GuardMask(NullOf(in.b), in.dst, mask_tmp + rows);
    const double* pa = AsF64(in.a, TmpF64(0));
    const double* pb = AsF64(in.b, TmpF64(1));
    K.div_f64(pa, pb, OwnF64(in.dst), OwnNull(in.dst), rows);
    SetNum(in.dst, ColClass::kDouble, FoldNulls(in.dst, true, na, nb));
  }

  void Neg(const Instr& in) {
    const SoaView& wa = v[in.a];
    if (wa.splat) {
      const RegSlot& s = wa.splat_val;
      RegSlot r;
      if (s.type == ValueType::kInt) {
        r = IntSlot(WrapNeg(s.v.i));
      } else if (s.type == ValueType::kDouble) {
        r = DoubleSlot(-s.v.d);
      }
      SplatOut(in.dst, r);
      return;
    }
    if (InAos(wa)) {
      Fallback1(in);
      return;
    }
    if (wa.cls == ColClass::kInt) {
      const uint8_t* na = NullOf(in.a);
      K.neg_i64(static_cast<const int64_t*>(wa.val), OwnI64(in.dst), rows);
      SetNum(in.dst, ColClass::kInt, FoldNulls(in.dst, false, na, nullptr));
    } else if (wa.cls == ColClass::kDouble) {
      const uint8_t* na = NullOf(in.a);
      K.neg_f64(static_cast<const double*>(wa.val), OwnF64(in.dst), rows);
      SetNum(in.dst, ColClass::kDouble,
             FoldNulls(in.dst, false, na, nullptr));
    } else {
      SplatOut(in.dst, RegSlot{});  // bool columns negate to null
    }
  }

  void Cmp(const Instr& in) {
    const int idx =
        static_cast<int>(in.op) - static_cast<int>(OpCode::kCmpEq);
    const SoaView& wa = v[in.a];
    const SoaView& wb = v[in.b];
    if (wa.splat && wb.splat) {
      SplatOut(in.dst, SlotCmp(in.op, wa.splat_val, wb.splat_val));
      return;
    }
    if (InAos(wa) || InAos(wb)) {
      Fallback2(in);
      return;
    }
    const bool eq = in.op == OpCode::kCmpEq;
    if (wa.cls == ColClass::kBool && wb.cls == ColClass::kBool &&
        (eq || in.op == OpCode::kCmpNe)) {
      const uint8_t* na = GuardMask(NullOf(in.a), in.dst, mask_tmp);
      const uint8_t* nb = GuardMask(NullOf(in.b), in.dst, mask_tmp + rows);
      uint8_t* out = OwnVal(in.dst);
      if (wb.splat) {
        (eq ? K.cmp_bool_eq_k : K.cmp_bool_ne_k)(
            static_cast<const uint8_t*>(wa.val), wb.splat_val.v.b ? 1 : 0,
            out, rows);
      } else if (wa.splat) {
        (eq ? K.cmp_bool_eq_k : K.cmp_bool_ne_k)(
            static_cast<const uint8_t*>(wb.val), wa.splat_val.v.b ? 1 : 0,
            out, rows);
      } else {
        (eq ? K.cmp_bool_eq : K.cmp_bool_ne)(
            static_cast<const uint8_t*>(wa.val),
            static_cast<const uint8_t*>(wb.val), out, rows);
      }
      SetBool(in.dst, FoldNulls(in.dst, false, na, nb));
      return;
    }
    if (IsNum(wa) && IsNum(wb)) {
      const uint8_t* na = GuardMask(NullOf(in.a), in.dst, mask_tmp);
      const uint8_t* nb = GuardMask(NullOf(in.b), in.dst, mask_tmp + rows);
      uint8_t* out = OwnVal(in.dst);
      if (wa.cls == ColClass::kInt && wb.cls == ColClass::kInt) {
        if (wb.splat) {
          K.cmp_i64_k[idx](static_cast<const int64_t*>(wa.val),
                           wb.splat_val.v.i, out, rows);
        } else if (wa.splat) {
          K.cmp_i64_k[MirrorCmpIdx(idx)](
              static_cast<const int64_t*>(wb.val), wa.splat_val.v.i, out,
              rows);
        } else {
          K.cmp_i64[idx](static_cast<const int64_t*>(wa.val),
                         static_cast<const int64_t*>(wb.val), out, rows);
        }
        SetBool(in.dst, FoldNulls(in.dst, false, na, nb));
      } else {
        if (wb.splat) {
          K.cmp_f64_k[idx](AsF64(in.a, TmpF64(0)),
                           SlotToDouble(wb.splat_val), out, OwnNull(in.dst),
                           rows);
        } else if (wa.splat) {
          K.cmp_f64_k[MirrorCmpIdx(idx)](AsF64(in.b, TmpF64(0)),
                                         SlotToDouble(wa.splat_val), out,
                                         OwnNull(in.dst), rows);
        } else {
          K.cmp_f64[idx](AsF64(in.a, TmpF64(0)), AsF64(in.b, TmpF64(1)),
                         out, OwnNull(in.dst), rows);
        }
        SetBool(in.dst, FoldNulls(in.dst, true, na, nb));
      }
      return;
    }
    // Remaining SoA pairs (bool vs numeric, bool order compares, null or
    // string splat vs a column) have no typed kernel; the generic row
    // loop is exact for all of them.
    Fallback2(in);
  }

  void CmpFC(const Instr& in) {
    const OpCode base = FusedCmpBase(in.op);
    const int idx =
        static_cast<int>(base) - static_cast<int>(OpCode::kCmpEq);
    const RegSlot k = consts[in.b];
    const ColClass sc = batch.ColumnClass(in.a);
    if (batch.ColumnPtr(in.a) == nullptr || k.type == ValueType::kNull) {
      SplatOut(in.dst, RegSlot{});  // null operand: incomparable rows
      return;
    }
    if (sc == ColClass::kInt && k.type == ValueType::kInt) {
      K.cmp_i64_k[idx](batch.IntColumn(in.a), k.v.i, OwnVal(in.dst), rows);
      SetBool(in.dst, nullptr);
      return;
    }
    if ((sc == ColClass::kInt || sc == ColClass::kDouble) &&
        IsNumeric(k.type)) {
      const double* col;
      if (sc == ColClass::kInt) {
        K.widen_i64(batch.IntColumn(in.a), TmpF64(0), rows);
        col = TmpF64(0);
      } else {
        col = batch.DoubleColumn(in.a);
      }
      K.cmp_f64_k[idx](col, SlotToDouble(k), OwnVal(in.dst),
                       OwnNull(in.dst), rows);
      SetBool(in.dst, K.any_byte(OwnNull(in.dst), rows) ? OwnNull(in.dst)
                                                        : nullptr);
      return;
    }
    if (sc == ColClass::kBool && k.type == ValueType::kBool &&
        (base == OpCode::kCmpEq || base == OpCode::kCmpNe)) {
      (base == OpCode::kCmpEq ? K.cmp_bool_eq_k : K.cmp_bool_ne_k)(
          batch.BoolColumn(in.a), k.v.b ? 1 : 0, OwnVal(in.dst), rows);
      SetBool(in.dst, nullptr);
      return;
    }
    if (sc != ColClass::kMixed && sc != ClassOfType(k.type)) {
      // Uniform column of one type vs a const of another (and not both
      // numeric): incomparable on every row.
      SplatOut(in.dst, RegSlot{});
      return;
    }
    FallbackFC(in);  // mixed/string columns, bool order compares
  }

  void TruthyOp(const Instr& in, bool negate) {
    const SoaView& wa = v[in.a];
    if (wa.splat) {
      const bool t = SlotTruthy(wa.splat_val);
      SplatOut(in.dst, BoolSlot(negate ? !t : t));
      return;
    }
    if (InAos(wa)) {
      Fallback1(in);
      return;
    }
    uint8_t* out = OwnVal(in.dst);
    const uint8_t* p = BoolBytes(in.a, out);
    if (negate) {
      K.not_bool(p, out, rows);
    } else if (p != out) {
      std::memcpy(out, p, rows);
    }
    SetBool(in.dst, nullptr);
  }

  void AndOr(const Instr& in, bool is_and) {
    const SoaView& wa = v[in.a];
    const SoaView& wb = v[in.b];
    if (InAos(wa) || InAos(wb)) {
      Fallback2(in);
      return;
    }
    if (wa.splat && wb.splat) {
      const bool ta = SlotTruthy(wa.splat_val);
      const bool tb = SlotTruthy(wb.splat_val);
      SplatOut(in.dst, BoolSlot(is_and ? ta && tb : ta || tb));
      return;
    }
    if (wa.splat || wb.splat) {
      const bool s = SlotTruthy(wa.splat ? wa.splat_val : wb.splat_val);
      if (is_and && !s) {
        SplatOut(in.dst, BoolSlot(false));
        return;
      }
      if (!is_and && s) {
        SplatOut(in.dst, BoolSlot(true));
        return;
      }
      // The splat side is the connective's identity; the result is the
      // other side's truthiness.
      const uint16_t other = wa.splat ? in.b : in.a;
      uint8_t* out = OwnVal(in.dst);
      const uint8_t* p = BoolBytes(other, out);
      if (p != out) std::memcpy(out, p, rows);
      SetBool(in.dst, nullptr);
      return;
    }
    uint8_t* out = OwnVal(in.dst);
    const uint8_t* pa;
    const uint8_t* pb;
    if (in.a == in.b) {
      pa = pb = BoolBytes(in.a, out);
    } else if (in.b == in.dst) {
      // Computing pa into dst's buffers first would clobber b's storage.
      pb = BoolBytes(in.b, OwnNull(in.dst));
      pa = BoolBytes(in.a, mask_tmp);
    } else {
      pa = BoolBytes(in.a, out);
      pb = BoolBytes(in.b, OwnNull(in.dst));
    }
    (is_and ? K.and_bool : K.or_bool)(pa, pb, out, rows);
    SetBool(in.dst, nullptr);
  }

  void Ret(const Instr& in, uint8_t* out_bytes, uint64_t* out_words,
           uint8_t* ret_tmp) {
    const SoaView& wa = v[in.a];
    uint8_t* tmp = out_bytes != nullptr ? out_bytes : ret_tmp;
    const uint8_t* p;
    if (wa.splat) {
      std::fill(tmp, tmp + rows,
                static_cast<uint8_t>(SlotTruthy(wa.splat_val) ? 1 : 0));
      p = tmp;
    } else if (InAos(wa)) {
      const RegSlot* a = aos + static_cast<size_t>(in.a) * rows;
      if (rc[in.a] == ColClass::kBool) {
        for (size_t r = 0; r < rows; ++r) tmp[r] = a[r].v.b ? 1 : 0;
      } else {
        for (size_t r = 0; r < rows; ++r) {
          tmp[r] = SlotTruthy(a[r]) ? 1 : 0;
        }
      }
      p = tmp;
    } else {
      p = BoolBytes(in.a, tmp);
    }
    if (out_bytes != nullptr && p != out_bytes) {
      std::memcpy(out_bytes, p, rows);
    }
    if (out_words != nullptr) K.pack_bits(p, rows, out_words);
  }
};

}  // namespace

void BytecodeProgram::RunColumnSoa(const ColumnarBatch& batch,
                                   ExecScratch* scratch,
                                   const simd::Kernels& kernels,
                                   uint8_t* out_bytes,
                                   uint64_t* out_words) const {
  const size_t rows = batch.num_rows();
  const size_t nregs = static_cast<size_t>(flat_num_regs_);
  if (scratch->cols.size() < nregs * rows) {
    scratch->cols.resize(nregs * rows);
  }
  scratch->reg_class.assign(nregs, ColClass::kMixed);
  scratch->soa_view.assign(nregs, SoaView{});
  if (scratch->soa_lanes.size() < nregs * rows) {
    scratch->soa_lanes.resize(nregs * rows);
  }
  if (scratch->soa_bytes.size() < 2 * nregs * rows) {
    scratch->soa_bytes.resize(2 * nregs * rows);
  }
  if (scratch->num_tmp.size() < 2 * rows) scratch->num_tmp.resize(2 * rows);
  if (scratch->byte_tmp.size() < 3 * rows) {
    scratch->byte_tmp.resize(3 * rows);
  }
  SoaExec ex{kernels,
             batch,
             const_slots_.data(),
             rows,
             scratch->cols.data(),
             scratch->reg_class.data(),
             scratch->soa_view.data(),
             scratch->soa_lanes.data(),
             scratch->soa_bytes.data(),
             scratch->num_tmp.data(),
             scratch->byte_tmp.data()};
  uint8_t* const ret_tmp = scratch->byte_tmp.data() + 2 * rows;
  for (const Instr& in : flat_code_) {
    switch (in.op) {
      case OpCode::kLoadConst:
        ex.SplatOut(in.dst, const_slots_[in.a]);
        break;
      case OpCode::kLoadField:
        ex.LoadField(in);
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
        ex.Arith(in);
        break;
      case OpCode::kDiv:
        ex.Div(in);
        break;
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe:
        ex.Cmp(in);
        break;
      case OpCode::kCmpEqFC:
      case OpCode::kCmpNeFC:
      case OpCode::kCmpLtFC:
      case OpCode::kCmpLeFC:
      case OpCode::kCmpGtFC:
      case OpCode::kCmpGeFC:
        ex.CmpFC(in);
        break;
      case OpCode::kTruthy:
        ex.TruthyOp(in, false);
        break;
      case OpCode::kNot:
        ex.TruthyOp(in, true);
        break;
      case OpCode::kNeg:
        ex.Neg(in);
        break;
      case OpCode::kAndEager:
        ex.AndOr(in, true);
        break;
      case OpCode::kOrEager:
        ex.AndOr(in, false);
        break;
      case OpCode::kRet:
        ex.Ret(in, out_bytes, out_words, ret_tmp);
        return;
      case OpCode::kJump:
      case OpCode::kJumpIfFalsy:
      case OpCode::kJumpIfTruthy: {
        // Unreachable (flat stream is branch-free); per-row scalar
        // fallback, as in RunColumnScalar.
        uint8_t* tmp = out_bytes != nullptr ? out_bytes : ret_tmp;
        for (size_t row = 0; row < rows; ++row) {
          tmp[row] = SlotTruthy(Exec(scratch, [&](int f) {
                       return batch.Cell(f, row);
                     }))
                         ? 1
                         : 0;
        }
        if (out_words != nullptr) kernels.pack_bits(tmp, rows, out_words);
        return;
      }
    }
  }
}

void BytecodeProgram::RunPredicateColumn(const ColumnarBatch& batch,
                                         ExecScratch* scratch,
                                         uint8_t* out) const {
  if (batch.num_rows() == 0) return;
  if (const simd::Kernels* k = simd::KernelsFor(scratch->simd)) {
    RunColumnSoa(batch, scratch, *k, out, nullptr);
  } else {
    RunColumnScalar(batch, scratch, out);
  }
}

void BytecodeProgram::RunPredicateColumnBits(const ColumnarBatch& batch,
                                             ExecScratch* scratch,
                                             uint64_t* out_words) const {
  const size_t rows = batch.num_rows();
  if (rows == 0) return;
  if (const simd::Kernels* k = simd::KernelsFor(scratch->simd)) {
    RunColumnSoa(batch, scratch, *k, nullptr, out_words);
    return;
  }
  if (scratch->byte_tmp.size() < rows) scratch->byte_tmp.resize(rows);
  uint8_t* const tmp = scratch->byte_tmp.data();
  RunColumnScalar(batch, scratch, tmp);
  const size_t words = (rows + 63) / 64;
  for (size_t w = 0; w < words; ++w) out_words[w] = 0;
  for (size_t r = 0; r < rows; ++r) {
    out_words[r >> 6] |= static_cast<uint64_t>(tmp[r] & 1) << (r & 63);
  }
}

// --- Disassembler -------------------------------------------------------

std::string BytecodeProgram::Disassemble() const {
  std::string out;
  out.append("; regs=").append(std::to_string(num_regs_));
  out.append(" consts=").append(std::to_string(consts_.size()));
  out.append(" fields=[");
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out.append(",");
    out.append(std::to_string(fields_[i]));
  }
  out.append("]\n");
  for (size_t i = 0; i < consts_.size(); ++i) {
    out.append("; c").append(std::to_string(i)).append(" = ");
    out.append(ValueTypeName(consts_[i].type()));
    out.append(":").append(consts_[i].ToString()).append("\n");
  }
  AppendListing(code_, &out);
  // The branch-free columnar lowering of the same predicate; pinned in
  // the goldens alongside the scalar stream so eager AND/OR codegen
  // changes are just as reviewable.
  out.append("; columnar: regs=").append(std::to_string(flat_num_regs_));
  out.append("\n");
  AppendListing(flat_code_, &out);
  return out;
}

void BytecodeProgram::AppendListing(const std::vector<Instr>& code,
                                    std::string* out) {
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    char head[16];
    std::snprintf(head, sizeof(head), "L%zu:", i);
    out->append(head);
    out->append(" ").append(OpCodeName(in.op));
    switch (in.op) {
      case OpCode::kLoadConst:
        out->append(" r").append(std::to_string(in.dst));
        out->append(", c").append(std::to_string(in.a));
        break;
      case OpCode::kLoadField:
        out->append(" r").append(std::to_string(in.dst));
        out->append(", f").append(std::to_string(in.a));
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe:
      case OpCode::kAndEager:
      case OpCode::kOrEager:
        out->append(" r").append(std::to_string(in.dst));
        out->append(", r").append(std::to_string(in.a));
        out->append(", r").append(std::to_string(in.b));
        break;
      case OpCode::kCmpEqFC:
      case OpCode::kCmpNeFC:
      case OpCode::kCmpLtFC:
      case OpCode::kCmpLeFC:
      case OpCode::kCmpGtFC:
      case OpCode::kCmpGeFC:
        out->append(" r").append(std::to_string(in.dst));
        out->append(", f").append(std::to_string(in.a));
        out->append(", c").append(std::to_string(in.b));
        break;
      case OpCode::kTruthy:
      case OpCode::kNot:
      case OpCode::kNeg:
        out->append(" r").append(std::to_string(in.dst));
        out->append(", r").append(std::to_string(in.a));
        break;
      case OpCode::kJump:
        out->append(" @L").append(std::to_string(in.b));
        break;
      case OpCode::kJumpIfFalsy:
      case OpCode::kJumpIfTruthy:
        out->append(" r").append(std::to_string(in.a));
        out->append(", @L").append(std::to_string(in.b));
        break;
      case OpCode::kRet:
        out->append(" r").append(std::to_string(in.a));
        break;
    }
    out->append("\n");
  }
}

// --- Compiler -----------------------------------------------------------

/// Shallow operand classifier backing the comparison-fusion peephole:
/// reports whether a node is a usable field reference or a literal
/// without recursing. A negative field index is classified as the null
/// literal it always evaluates to (matching VisitFieldRef's fold).
class NodeShape : private ExpressionVisitor {
 public:
  static NodeShape Of(const Expression& expr) {
    NodeShape shape;
    expr.Accept(&shape);
    return shape;
  }

  bool is_literal = false;
  bool is_field = false;
  Value literal;
  int field = -1;

 private:
  void VisitLiteral(const Value& value) override {
    is_literal = true;
    literal = value;
  }
  void VisitFieldRef(int index, const std::string& name) override {
    (void)name;
    if (index < 0) {
      is_literal = true;
      literal = Value::Null();
    } else if (index <= kMaxOperand) {
      is_field = true;
      field = index;
    }
  }
  void VisitBinary(BinaryOp, const Expression&, const Expression&) override {}
  void VisitNot(const Expression&) override {}
  void VisitNegate(const Expression&) override {}
};

/// Tree-walking code generator. Register allocation is stack-shaped: a
/// node's result lands in `dst`, binary operands in `dst` / `dst + 1`, so
/// the register count equals the tree depth. Each predicate is lowered
/// twice from the same tree: a scalar stream where AND/OR become
/// short-circuit jumps with the interpreter's exact result values
/// (lhs-falsy AND returns literal false, not the lhs value), and a
/// branch-free stream where they become eager boolean opcodes — value-
/// identical because no opcode traps — which the columnar executor can
/// run column-at-a-time. `field OP literal` comparisons fuse into one
/// instruction in both streams (mirrored when the literal is on the
/// left: c < f  ==  f > c, and incomparability is symmetric).
class PredicateCompiler : private ExpressionVisitor {
 public:
  Result<std::shared_ptr<const BytecodeProgram>> Compile(
      const Expression& root) {
    program_ = std::shared_ptr<BytecodeProgram>(new BytecodeProgram());
    Instr ret;
    ret.op = OpCode::kRet;
    ret.a = 0;

    eager_bool_ = false;
    out_ = &program_->code_;
    num_regs_ptr_ = &program_->num_regs_;
    CompileInto(root, 0);
    program_->code_.push_back(ret);

    eager_bool_ = true;
    out_ = &program_->flat_code_;
    num_regs_ptr_ = &program_->flat_num_regs_;
    CompileInto(root, 0);
    program_->flat_code_.push_back(ret);

    if (!error_.ok()) return error_;
    std::sort(program_->fields_.begin(), program_->fields_.end());
    // Prebuild the unboxed constant pool; string slots borrow from the
    // program-owned consts_ vector, which is final from here on.
    program_->const_slots_.reserve(program_->consts_.size());
    for (const Value& v : program_->consts_) {
      program_->const_slots_.push_back(SlotFromValue(v));
    }
    std::shared_ptr<const BytecodeProgram> done = std::move(program_);
    return done;
  }

 private:
  void CompileInto(const Expression& expr, int dst) {
    if (dst > kMaxOperand) {
      Fail("expression tree too deep for 16-bit registers");
      return;
    }
    if (dst + 1 > *num_regs_ptr_) *num_regs_ptr_ = dst + 1;
    dst_ = dst;
    expr.Accept(this);
  }

  void VisitLiteral(const Value& value) override {
    Instr in;
    in.op = OpCode::kLoadConst;
    in.dst = static_cast<uint16_t>(dst_);
    in.a = InternConst(value);
    Emit(in);
  }

  void VisitFieldRef(int index, const std::string& name) override {
    (void)name;  // diagnostics only; evaluation is positional
    if (index < 0) {
      // The interpreter yields null for a negative index on every tuple;
      // fold that to a null constant.
      VisitLiteral(Value::Null());
      return;
    }
    if (index > kMaxOperand) {
      Fail("field index exceeds 16-bit operand");
      return;
    }
    Instr in;
    in.op = OpCode::kLoadField;
    in.dst = static_cast<uint16_t>(dst_);
    in.a = static_cast<uint16_t>(index);
    Emit(in);
    RecordField(index);
  }

  void VisitBinary(BinaryOp op, const Expression& lhs,
                   const Expression& rhs) override {
    const int dst = dst_;
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      const bool is_and = op == BinaryOp::kAnd;
      if (eager_bool_) {
        // Branch-free lowering: evaluate both sides, combine truthiness.
        // Identical to the short-circuit result because evaluation is
        // total and pure — skipping the rhs is unobservable.
        CompileInto(lhs, dst);
        CompileInto(rhs, dst + 1);
        Instr in;
        in.op = is_and ? OpCode::kAndEager : OpCode::kOrEager;
        in.dst = static_cast<uint16_t>(dst);
        in.a = static_cast<uint16_t>(dst);
        in.b = static_cast<uint16_t>(dst + 1);
        Emit(in);
        return;
      }
      // lhs decides; on short-circuit the result is the literal bool,
      // otherwise Truthy(rhs) — exactly BinaryExpr::Eval.
      CompileInto(lhs, dst);
      Instr jshort;
      jshort.op = is_and ? OpCode::kJumpIfFalsy : OpCode::kJumpIfTruthy;
      jshort.a = static_cast<uint16_t>(dst);
      const size_t jshort_at = Emit(jshort);
      CompileInto(rhs, dst);
      Instr truthy;
      truthy.op = OpCode::kTruthy;
      truthy.dst = static_cast<uint16_t>(dst);
      truthy.a = static_cast<uint16_t>(dst);
      Emit(truthy);
      Instr jend;
      jend.op = OpCode::kJump;
      const size_t jend_at = Emit(jend);
      Patch(jshort_at, CurrentLabel());
      Instr load;
      load.op = OpCode::kLoadConst;
      load.dst = static_cast<uint16_t>(dst);
      load.a = InternConst(Value(!is_and));
      Emit(load);
      Patch(jend_at, CurrentLabel());
      return;
    }
    if (OpCode fused; FusedCmpOp(op, &fused)) {
      const NodeShape l = NodeShape::Of(lhs);
      const NodeShape r = NodeShape::Of(rhs);
      if (l.is_field && r.is_literal) {
        EmitFusedCmp(fused, dst, l.field, r.literal);
        return;
      }
      if (l.is_literal && r.is_field) {
        EmitFusedCmp(MirrorFusedCmp(fused), dst, r.field, l.literal);
        return;
      }
    }
    CompileInto(lhs, dst);
    CompileInto(rhs, dst + 1);
    Instr in;
    switch (op) {
      case BinaryOp::kAdd:
        in.op = OpCode::kAdd;
        break;
      case BinaryOp::kSub:
        in.op = OpCode::kSub;
        break;
      case BinaryOp::kMul:
        in.op = OpCode::kMul;
        break;
      case BinaryOp::kDiv:
        in.op = OpCode::kDiv;
        break;
      case BinaryOp::kEq:
        in.op = OpCode::kCmpEq;
        break;
      case BinaryOp::kNe:
        in.op = OpCode::kCmpNe;
        break;
      case BinaryOp::kLt:
        in.op = OpCode::kCmpLt;
        break;
      case BinaryOp::kLe:
        in.op = OpCode::kCmpLe;
        break;
      case BinaryOp::kGt:
        in.op = OpCode::kCmpGt;
        break;
      case BinaryOp::kGe:
        in.op = OpCode::kCmpGe;
        break;
      default:
        Fail("unhandled binary operator");
        return;
    }
    in.dst = static_cast<uint16_t>(dst);
    in.a = static_cast<uint16_t>(dst);
    in.b = static_cast<uint16_t>(dst + 1);
    Emit(in);
  }

  void VisitNot(const Expression& operand) override {
    const int dst = dst_;
    CompileInto(operand, dst);
    Instr in;
    in.op = OpCode::kNot;
    in.dst = static_cast<uint16_t>(dst);
    in.a = static_cast<uint16_t>(dst);
    Emit(in);
  }

  void VisitNegate(const Expression& operand) override {
    const int dst = dst_;
    CompileInto(operand, dst);
    Instr in;
    in.op = OpCode::kNeg;
    in.dst = static_cast<uint16_t>(dst);
    in.a = static_cast<uint16_t>(dst);
    Emit(in);
  }

  /// Maps a comparison BinaryOp to its fused field-vs-const opcode.
  static bool FusedCmpOp(BinaryOp op, OpCode* fused) {
    switch (op) {
      case BinaryOp::kEq:
        *fused = OpCode::kCmpEqFC;
        return true;
      case BinaryOp::kNe:
        *fused = OpCode::kCmpNeFC;
        return true;
      case BinaryOp::kLt:
        *fused = OpCode::kCmpLtFC;
        return true;
      case BinaryOp::kLe:
        *fused = OpCode::kCmpLeFC;
        return true;
      case BinaryOp::kGt:
        *fused = OpCode::kCmpGtFC;
        return true;
      case BinaryOp::kGe:
        *fused = OpCode::kCmpGeFC;
        return true;
      default:
        return false;
    }
  }

  /// `literal OP field` fuses as the mirrored comparison with the field
  /// on the left: c < f == f > c. Eq/Ne are symmetric and the
  /// incomparable (null) result is order-independent.
  static OpCode MirrorFusedCmp(OpCode fused) {
    switch (fused) {
      case OpCode::kCmpLtFC:
        return OpCode::kCmpGtFC;
      case OpCode::kCmpLeFC:
        return OpCode::kCmpGeFC;
      case OpCode::kCmpGtFC:
        return OpCode::kCmpLtFC;
      case OpCode::kCmpGeFC:
        return OpCode::kCmpLeFC;
      default:
        return fused;  // kCmpEqFC / kCmpNeFC
    }
  }

  void EmitFusedCmp(OpCode fused, int dst, int field, const Value& literal) {
    Instr in;
    in.op = fused;
    in.dst = static_cast<uint16_t>(dst);
    in.a = static_cast<uint16_t>(field);
    in.b = InternConst(literal);
    Emit(in);
    RecordField(field);
  }

  size_t Emit(const Instr& in) {
    out_->push_back(in);
    return out_->size() - 1;
  }

  uint16_t CurrentLabel() const {
    return static_cast<uint16_t>(out_->size());
  }

  void Patch(size_t at, uint16_t target) { (*out_)[at].b = target; }

  /// Deduplicates by the bit-exact structural encoding (the same one the
  /// multi-query fingerprint uses), so 0.1 and a longer spelling of the
  /// same double share a pool entry while 2 and 2.0 do not.
  uint16_t InternConst(const Value& value) {
    std::string key;
    key.push_back(static_cast<char>(value.type()));
    AppendValueFingerprintKey(value, &key);
    auto [it, inserted] = const_index_.emplace(
        std::move(key), static_cast<int>(program_->consts_.size()));
    if (inserted) {
      if (program_->consts_.size() > static_cast<size_t>(kMaxOperand)) {
        Fail("constant pool exceeds 16-bit operand");
        return 0;
      }
      program_->consts_.push_back(value);
    }
    return static_cast<uint16_t>(it->second);
  }

  static void AppendValueFingerprintKey(const Value& v, std::string* out) {
    switch (v.type()) {
      case ValueType::kNull:
        return;
      case ValueType::kInt: {
        const int64_t i = v.AsInt();
        out->append(reinterpret_cast<const char*>(&i), sizeof(int64_t));
        return;
      }
      case ValueType::kDouble: {
        const double d = v.AsDouble();
        out->append(reinterpret_cast<const char*>(&d), sizeof(double));
        return;
      }
      case ValueType::kBool:
        out->push_back(v.AsBool() ? 1 : 0);
        return;
      case ValueType::kString:
        out->append(v.AsString());
        return;
    }
  }

  void RecordField(int index) {
    auto& fields = program_->fields_;
    for (const int f : fields) {
      if (f == index) return;
    }
    fields.push_back(index);
  }

  void Fail(const std::string& message) {
    if (error_.ok()) error_ = Status::InvalidArgument("compile: " + message);
  }

  std::shared_ptr<BytecodeProgram> program_;
  std::unordered_map<std::string, int> const_index_;
  Status error_ = Status::OK();
  std::vector<Instr>* out_ = nullptr;   // stream of the current pass
  int* num_regs_ptr_ = nullptr;         // its register-count watermark
  bool eager_bool_ = false;             // flat pass: eager AND/OR
  int dst_ = 0;
};

Result<std::shared_ptr<const BytecodeProgram>> CompilePredicate(
    const Expression& expr) {
  PredicateCompiler compiler;
  return compiler.Compile(expr);
}

}  // namespace tpstream
