#ifndef TPSTREAM_EXPR_SIMD_H_
#define TPSTREAM_EXPR_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tpstream::simd {

/// Vector width tier of the columnar kernels. Levels are ordered: a
/// request above what the machine supports clamps down (Effective), and
/// kOff selects the scalar RegSlot executor, which stays the
/// semantically-guaranteed fallback on every platform.
///
/// kSse2 is the portable 128-bit tier: on x86-64 it compiles to SSE2
/// (baseline, always present); elsewhere the same generic-vector kernels
/// compile to whatever 128-bit ISA the target has (or scalar code), so
/// the tier is always available. kAvx2 exists only when the build could
/// compile the 256-bit translation unit *and* the CPU reports AVX2.
enum class SimdLevel : uint8_t { kOff = 0, kSse2 = 1, kAvx2 = 2 };

/// "off" / "sse2" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Best level this machine supports (cached capability probe).
SimdLevel BestSimdLevel();

/// Parses "off" | "sse2" | "avx2" | "native" ("native" resolves to
/// BestSimdLevel()). Returns false (and leaves *out alone) on anything
/// else, including empty.
bool ParseSimdLevel(std::string_view text, SimdLevel* out);

/// The level a request actually runs at: min(requested, best).
SimdLevel Effective(SimdLevel requested);

/// Process-wide default: the TPSTREAM_SIMD environment variable when set
/// to a parsable value, otherwise BestSimdLevel(). Cached on first call.
SimdLevel DefaultSimdLevel();

/// Function-pointer table of one level's kernels, or nullptr for kOff.
/// Cross-TU dispatch: the AVX2 table lives in a TU compiled with -mavx2,
/// so 256-bit code can never leak into paths executed on narrower CPUs.
struct Kernels;
const Kernels* KernelsFor(SimdLevel level);

/// One tier's columnar kernels. Boolean columns are byte arrays (one
/// 0/1 byte per row); null masks are byte arrays too (1 = null,
/// nullptr = no nulls) and only become packed words at the RunPredicate
/// boundary (pack_bits). Value lanes under a set null byte are
/// *don't-care*: every consumer folds the mask, so kernels are free to
/// write garbage there (they never trap — integer ops wrap, float ops
/// follow IEEE, division guards zero divisors).
///
/// Comparison families are indexed by `opcode - kCmpEq`
/// (eq, ne, lt, le, gt, ge). Exactness contract (fuzzer-enforced):
///  - *_i64 compares run in the integer domain, never widened;
///  - *_f64 compares write out_null=1 on any NaN operand (matching the
///    interpreter's incomparable-null) and the raw IEEE predicate byte
///    otherwise;
///  - widen_i64 is static_cast<double> per lane;
///  - add/sub/mul/neg_i64 wrap exactly like common/value.h WrapAdd &co;
///  - div_f64 writes out_null=1 where b == 0.0 (quotient lane then
///    unspecified) and a/b elsewhere;
///  - neg_f64 flips the sign bit (preserves -0.0 / NaN payloads);
///  - truthy_f64 is `x != 0.0` (NaN is truthy), truthy_i64 is `x != 0`.
struct Kernels {
  size_t vector_bytes;  // lane register width this tier was built at

  // Column vs broadcast scalar.
  void (*cmp_f64_k[6])(const double* a, double b, uint8_t* out,
                       uint8_t* out_null, size_t n);
  void (*cmp_i64_k[6])(const int64_t* a, int64_t b, uint8_t* out, size_t n);
  // Column vs column.
  void (*cmp_f64[6])(const double* a, const double* b, uint8_t* out,
                     uint8_t* out_null, size_t n);
  void (*cmp_i64[6])(const int64_t* a, const int64_t* b, uint8_t* out,
                     size_t n);
  // Bool equality over 0/1 bytes (the only bool fast compares; order
  // compares on bools stay on the generic path).
  void (*cmp_bool_eq)(const uint8_t* a, const uint8_t* b, uint8_t* out,
                      size_t n);
  void (*cmp_bool_ne)(const uint8_t* a, const uint8_t* b, uint8_t* out,
                      size_t n);
  void (*cmp_bool_eq_k)(const uint8_t* a, uint8_t b, uint8_t* out, size_t n);
  void (*cmp_bool_ne_k)(const uint8_t* a, uint8_t b, uint8_t* out, size_t n);

  // Arithmetic.
  void (*add_f64)(const double* a, const double* b, double* out, size_t n);
  void (*sub_f64)(const double* a, const double* b, double* out, size_t n);
  void (*mul_f64)(const double* a, const double* b, double* out, size_t n);
  void (*div_f64)(const double* a, const double* b, double* out,
                  uint8_t* out_null, size_t n);
  void (*add_i64)(const int64_t* a, const int64_t* b, int64_t* out, size_t n);
  void (*sub_i64)(const int64_t* a, const int64_t* b, int64_t* out, size_t n);
  void (*mul_i64)(const int64_t* a, const int64_t* b, int64_t* out, size_t n);
  void (*neg_i64)(const int64_t* a, int64_t* out, size_t n);
  void (*neg_f64)(const double* a, double* out, size_t n);
  void (*widen_i64)(const int64_t* a, double* out, size_t n);

  // Truthiness and mask combination over 0/1 bytes.
  void (*truthy_i64)(const int64_t* a, uint8_t* out, size_t n);
  void (*truthy_f64)(const double* a, uint8_t* out, size_t n);
  void (*and_bool)(const uint8_t* a, const uint8_t* b, uint8_t* out,
                   size_t n);
  void (*or_bool)(const uint8_t* a, const uint8_t* b, uint8_t* out,
                  size_t n);
  void (*not_bool)(const uint8_t* a, uint8_t* out, size_t n);
  // out = value & ~nulls: folds a null mask into truthiness bytes
  // (null is falsy, like the interpreter's Truthy(null)).
  void (*andnot_bool)(const uint8_t* value, const uint8_t* nulls,
                      uint8_t* out, size_t n);

  bool (*any_byte)(const uint8_t* a, size_t n);
  // Packs n 0/1 bytes into ceil(n/64) words, row r at word r/64 bit
  // r%64; tail bits of the last word are zero.
  void (*pack_bits)(const uint8_t* bytes, size_t n, uint64_t* words);
};

namespace internal {
const Kernels* KernelsSse2();
#if defined(TPSTREAM_HAVE_AVX2_TU)
const Kernels* KernelsAvx2();
#endif
}  // namespace internal

}  // namespace tpstream::simd

#endif  // TPSTREAM_EXPR_SIMD_H_
