// 128-bit kernel tier. On x86-64 this is baseline SSE2 — no extra -m
// flags, so the TU is safe to execute on any supported CPU; on other
// architectures the generic vectors lower to the native 128-bit ISA or
// plain scalar code, keeping the tier universally available.
#define TPS_SIMD_VB 16
#define TPS_SIMD_TABLE_FN KernelsSse2
#include "expr/simd_kernels.inc"
