#include "expr/aggregate.h"

namespace tpstream {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kFirst:
      return "first";
    case AggKind::kLast:
      return "last";
  }
  return "?";
}

std::optional<AggKind> AggKindFromName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "avg" || lower == "mean") return AggKind::kAvg;
  if (lower == "first") return AggKind::kFirst;
  if (lower == "last") return AggKind::kLast;
  return std::nullopt;
}

void AggregateState::Init(const Tuple& tuple) {
  count_ = 0;
  sum_ = 0.0;
  value_ = Value::Null();
  Update(tuple);
}

void AggregateState::Update(const Tuple& tuple) {
  ++count_;
  switch (spec_.kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      sum_ += Input(tuple).ToDouble();
      break;
    case AggKind::kMin: {
      const Value v = Input(tuple);
      if (value_.is_null() || Value::Compare(v, value_) == -1) value_ = v;
      break;
    }
    case AggKind::kMax: {
      const Value v = Input(tuple);
      if (value_.is_null() || Value::Compare(v, value_) == 1) value_ = v;
      break;
    }
    case AggKind::kFirst:
      if (count_ == 1) value_ = Input(tuple);
      break;
    case AggKind::kLast:
      value_ = Input(tuple);
      break;
  }
}

Value AggregateState::Result() const {
  switch (spec_.kind) {
    case AggKind::kCount:
      return Value(count_);
    case AggKind::kSum:
      return Value(sum_);
    case AggKind::kAvg:
      return count_ == 0 ? Value::Null() : Value(sum_ / count_);
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kFirst:
    case AggKind::kLast:
      return value_;
  }
  return Value::Null();
}

AggregatorSet::AggregatorSet(std::vector<AggregateSpec> specs)
    : specs_(std::move(specs)) {
  states_.reserve(specs_.size());
  for (const AggregateSpec& spec : specs_) {
    states_.emplace_back(spec);
  }
}

void AggregatorSet::Init(const Tuple& tuple) {
  for (AggregateState& state : states_) state.Init(tuple);
}

void AggregatorSet::Update(const Tuple& tuple) {
  for (AggregateState& state : states_) state.Update(tuple);
}

void AggregatorSet::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kAggregatorSet);
  w.U32(static_cast<uint32_t>(states_.size()));
  for (const AggregateState& state : states_) state.Checkpoint(w);
  w.EndSection(cookie);
}

Status AggregatorSet::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kAggregatorSet);
  const uint32_t n = r.U32();
  if (r.ok() && n != states_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: aggregate count mismatch (definition changed?)"));
    return r.status();
  }
  for (AggregateState& state : states_) state.Restore(r);
  return r.EndSection(end);
}

Tuple AggregatorSet::Snapshot() const {
  Tuple out;
  out.reserve(states_.size());
  for (const AggregateState& state : states_) {
    out.push_back(state.Result());
  }
  return out;
}

}  // namespace tpstream
