#include "expr/simd.h"

#include <cstdlib>

namespace tpstream::simd {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kOff:
      return "off";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel BestSimdLevel() {
  static const SimdLevel best = [] {
#if defined(TPSTREAM_HAVE_AVX2_TU) && \
    (defined(__x86_64__) || defined(__i386__))
    // __builtin_cpu_supports also checks OS XSAVE state, so a positive
    // answer means the 256-bit register file is actually usable.
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
    return SimdLevel::kSse2;
  }();
  return best;
}

bool ParseSimdLevel(std::string_view text, SimdLevel* out) {
  if (text == "off") {
    *out = SimdLevel::kOff;
  } else if (text == "sse2") {
    *out = SimdLevel::kSse2;
  } else if (text == "avx2") {
    *out = SimdLevel::kAvx2;
  } else if (text == "native") {
    *out = BestSimdLevel();
  } else {
    return false;
  }
  return true;
}

SimdLevel Effective(SimdLevel requested) {
  const SimdLevel best = BestSimdLevel();
  return requested > best ? best : requested;
}

SimdLevel DefaultSimdLevel() {
  static const SimdLevel level = [] {
    if (const char* env = std::getenv("TPSTREAM_SIMD");
        env != nullptr && *env != '\0') {
      SimdLevel parsed;
      if (ParseSimdLevel(env, &parsed)) return Effective(parsed);
      // Unparsable values fall through to the machine default rather
      // than failing: the env var is a tuning knob, not configuration.
    }
    return BestSimdLevel();
  }();
  return level;
}

const Kernels* KernelsFor(SimdLevel level) {
  switch (Effective(level)) {
    case SimdLevel::kOff:
      return nullptr;
    case SimdLevel::kSse2:
      return internal::KernelsSse2();
    case SimdLevel::kAvx2:
#if defined(TPSTREAM_HAVE_AVX2_TU)
      return internal::KernelsAvx2();
#else
      return internal::KernelsSse2();
#endif
  }
  return nullptr;
}

}  // namespace tpstream::simd
