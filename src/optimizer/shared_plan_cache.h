#ifndef TPSTREAM_OPTIMIZER_SHARED_PLAN_CACHE_H_
#define TPSTREAM_OPTIMIZER_SHARED_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/pattern.h"
#include "matcher/stats.h"

namespace tpstream {

/// Cross-query memo of PlanOptimizer::BestOrder results, shared by the
/// engines of one multi::QueryGroup. Thousands of standing queries with
/// the same pattern shape see the same statistics trajectories, so the
/// subset-DP — exponential in the symbol count — would otherwise run
/// once per query for identical inputs.
///
/// The cache is a pure memo: keys capture *everything* BestOrder depends
/// on (pattern structure incl. constraint relation masks, the seed mode,
/// and the bit-exact EMA values of the statistics), so a hit returns the
/// same order the optimizer would have computed. Engines using the cache
/// therefore behave identically to engines that do not — sharing the
/// memo can never change a plan, only skip recomputing it.
///
/// Not synchronized: a QueryGroup drives all its engines from one thread
/// (same contract as TPStreamOperator). Each partition/worker of a
/// parallel deployment gets its own cache.
class SharedPlanCache {
 public:
  /// Returns the order cached under `key`, invoking `compute` on a miss.
  const std::vector<int>& GetOrCompute(
      const std::string& key,
      const std::function<std::vector<int>()>& compute);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, std::vector<int>> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Canonical encoding of the plan-relevant pattern structure: symbol
/// count and every constraint's (a, b, relation mask), plus the cost
/// model's seed mode. Symbol names are excluded — the optimizer never
/// reads them.
std::string PatternPlanKey(const TemporalPattern& pattern, bool low_latency);

/// Bit-exact encoding of the statistics BestOrder reads (buffer and
/// selectivity EMAs). Doubles encode as IEEE-754 bit patterns so two
/// stats objects key equally iff BestOrder is guaranteed to return the
/// same order for both.
std::string StatsPlanKey(const MatcherStats& stats);

}  // namespace tpstream

#endif  // TPSTREAM_OPTIMIZER_SHARED_PLAN_CACHE_H_
