#ifndef TPSTREAM_OPTIMIZER_PLAN_OPTIMIZER_H_
#define TPSTREAM_OPTIMIZER_PLAN_OPTIMIZER_H_

#include <optional>
#include <vector>

#include <string>

#include "algebra/pattern.h"
#include "ckpt/serde.h"
#include "common/status.h"
#include "matcher/stats.h"
#include "obs/metrics.h"
#include "optimizer/shared_plan_cache.h"

namespace tpstream {

/// Cost-based selection of the matcher's evaluation order (Section 5.4).
///
/// Estimates follow Equations 2-4 of the paper: intermediate result sizes
/// grow with buffer sizes and constraint selectivities, and each step pays
/// a binary-search cost bounded by |P| * 13 * 4 * log2(|B_i|). Buffer
/// sizes and constraint selectivities come from MatcherStats (EMA-smoothed
/// at runtime; Table 3 estimates initially).
///
/// Orders joining a buffer without an applicable constraint (cross
/// products) are excluded, unless the pattern graph is disconnected and a
/// cross product is unavoidable.
/// Refinement over the paper's plan costing: Algorithm 2 always seeds the
/// working set with the newly arrived situation, so the effective cost of
/// an order depends on which symbol triggered the match attempt. Cost()
/// therefore averages Equation 2 over the seed's trigger variants (each
/// seed's step is intercepted and its constraints become applicable from
/// the start). With low-latency triggers, a start-trigger seed is still
/// *ongoing*: constraints that cannot be certain with that end unknown
/// filter their counterpart buffers to nothing, which the model captures
/// by scaling the constraint's selectivity with the (Table 3-weighted)
/// fraction of its relations decidable against an ongoing seed. With
/// empty buffers the paper's unseeded formula ties across many orders;
/// the seeded average separates them and reproduces the plan choices
/// reported in Section 6.4.1. PaperCost() retains the verbatim Equation 2
/// for reference.
class PlanOptimizer {
 public:
  /// `low_latency`: model the seed set of the low-latency matcher
  /// (trigger symbols, with ongoing start-trigger seeds) rather than the
  /// baseline matcher's (every symbol, finished).
  explicit PlanOptimizer(const TemporalPattern* pattern,
                         bool low_latency = true);

  /// Estimated cost of one evaluation order: Equation 2 averaged over the
  /// seed symbol (see class comment).
  double Cost(const std::vector<int>& permutation,
              const MatcherStats& stats) const;

  /// Equation 2 verbatim (no seeding), as printed in the paper.
  double PaperCost(const std::vector<int>& permutation,
                   const MatcherStats& stats) const;

  /// Cheapest order under Cost(), computed exactly with a Selinger-style
  /// subset DP (left-deep orders only, which is the full plan space
  /// here).
  std::vector<int> BestOrder(const MatcherStats& stats) const;

  /// All admissible orders (used by the plan-quality experiments and to
  /// cross-check the DP). Exponential; intended for small patterns.
  std::vector<std::vector<int>> EnumerateOrders() const;

 private:
  /// One seed variant of the cost average: which symbol triggered and
  /// whether it was still ongoing (start trigger) at that point.
  struct Seed {
    int symbol = 0;
    bool ongoing = false;
  };

  /// Effective selectivity of constraint `ci` when one endpoint is the
  /// (possibly ongoing) seed.
  double EffectiveSelectivity(int ci, const MatcherStats& stats,
                              const Seed& seed) const;

  /// Estimated size of the intermediate result after joining `subset`
  /// (bitmask of symbols, seed included); path-independent (Equation 3
  /// accumulated).
  double ResultSize(uint32_t subset, const MatcherStats& stats,
                    const Seed& seed) const;

  /// Cost of extending the bound set `subset` (which already includes the
  /// seed) with `symbol`'s buffer scan.
  double StepCost(int symbol, uint32_t subset, const MatcherStats& stats,
                  const Seed& seed) const;

  bool ConnectedToSubset(int symbol, uint32_t subset) const;

  const TemporalPattern* pattern_;
  std::vector<Seed> seeds_;
  /// ongoing_fraction_[ci]: Table 3-weighted share of constraint ci's
  /// relations that remain decidable when side A / side B is ongoing.
  std::vector<std::pair<double, double>> ongoing_fraction_;
};

/// Watches matcher statistics and re-optimizes the evaluation order when
/// they drift beyond a threshold (Section 5.4.1). Migration is free
/// because the matcher keeps no inter-update state.
class AdaptiveController {
 public:
  struct Options {
    /// Relative deviation of any tracked statistic that triggers
    /// re-optimization (the paper's threshold t).
    double threshold = 0.2;
    /// Updates between drift checks (statistics are EMAs; checking every
    /// update would be needlessly expensive).
    int check_interval = 64;
    /// Cost-model seed set: low-latency triggers vs baseline arrivals.
    bool low_latency = true;
    /// Optional observability sink: records `optimizer.reoptimizations`,
    /// `optimizer.plan_switches` and the `optimizer.buffer_drift` /
    /// `optimizer.selectivity_drift` gauges (max relative deviation of
    /// the live EMAs from the estimates the current plan was built on —
    /// i.e. estimated-vs-actual statistics).
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional cross-query plan memo (multi::QueryGroup). BestOrder is
    /// deterministic in (pattern, seed mode, stats), so a cache hit
    /// returns exactly the order the local optimizer would compute; the
    /// cache only skips the subset-DP, it never changes plans. Must
    /// outlive the controller; not synchronized (single-threaded use).
    SharedPlanCache* plan_cache = nullptr;
  };

  AdaptiveController(const TemporalPattern* pattern, Options options);

  /// Returns a new evaluation order if one should be installed now. The
  /// first call always suggests the initial plan.
  std::optional<std::vector<int>> MaybeReoptimize(const MatcherStats& stats);

  int64_t reoptimizations() const { return reoptimizations_; }
  int64_t migrations() const { return migrations_; }

  /// Serializes the adaptive state: call/reoptimization/migration counts,
  /// the statistics snapshot the current plan was costed on, and the
  /// current order. Restoring them keeps the drift-check cadence and
  /// re-optimization decisions of a replayed run identical to the
  /// uninterrupted one.
  void Checkpoint(ckpt::Writer& w) const;
  Status Restore(ckpt::Reader& r);

 private:
  bool Drifted(const MatcherStats& stats) const;

  PlanOptimizer optimizer_;
  Options options_;
  std::string plan_key_prefix_;  // PatternPlanKey; set iff plan_cache
  int64_t calls_ = 0;
  int64_t reoptimizations_ = 0;
  int64_t migrations_ = 0;
  bool initialized_ = false;
  std::vector<double> snapshot_buffers_;
  std::vector<double> snapshot_selectivities_;
  std::vector<int> current_order_;

  // Observability handles (null when metrics are disabled).
  obs::Counter* reopt_ctr_ = nullptr;
  obs::Counter* switches_ctr_ = nullptr;
  obs::Gauge* buffer_drift_gauge_ = nullptr;
  obs::Gauge* selectivity_drift_gauge_ = nullptr;
};

}  // namespace tpstream

#endif  // TPSTREAM_OPTIMIZER_PLAN_OPTIMIZER_H_
