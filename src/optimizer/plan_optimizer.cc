#include "optimizer/plan_optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "algebra/detection.h"

namespace tpstream {

namespace {

double BufferSize(const MatcherStats& stats, int symbol) {
  // Before any data arrives the EMAs are zero; assume unit-sized buffers
  // so that the initial plan choice is driven by the Table 3
  // selectivities, as in the paper.
  return std::max(stats.buffer_ema(symbol), 1.0);
}

// Cost bound of findMatches on a buffer of size b with `constraints`
// applicable constraints: per constraint up to 13 relations, 4 binary
// searches each (Section 5.2).
double FindMatchesCost(double b, int constraints) {
  if (constraints == 0) return b;  // cross product scan
  return constraints * 13.0 * 4.0 * std::log2(std::max(b, 2.0));
}

}  // namespace

PlanOptimizer::PlanOptimizer(const TemporalPattern* pattern,
                             bool low_latency)
    : pattern_(pattern) {
  // Table 3-weighted share of each constraint's relations that stay
  // decidable while one side's end is unknown.
  ongoing_fraction_.reserve(pattern->constraints().size());
  for (const TemporalConstraint& c : pattern->constraints()) {
    double total = 0.0;
    double a_ok = 0.0;
    double b_ok = 0.0;
    c.relations.ForEach([&](Relation r) {
      const double w = DefaultSelectivity(r);
      total += w;
      if (CertainWhileOngoing(r, /*a_side_ongoing=*/true)) a_ok += w;
      if (CertainWhileOngoing(r, /*a_side_ongoing=*/false)) b_ok += w;
    });
    ongoing_fraction_.emplace_back(total > 0 ? a_ok / total : 0.0,
                                   total > 0 ? b_ok / total : 0.0);
  }

  // Seed variants: the low-latency matcher joins from trigger endpoints
  // (start triggers with the seed still ongoing); the baseline matcher
  // from every finished situation.
  if (low_latency) {
    const DetectionAnalysis analysis(
        *pattern, std::vector<DurationConstraint>(pattern->num_symbols()));
    for (int s = 0; s < pattern->num_symbols(); ++s) {
      if (analysis.match_on_start(s)) seeds_.push_back(Seed{s, true});
      if (analysis.match_on_end(s)) seeds_.push_back(Seed{s, false});
    }
  }
  if (seeds_.empty()) {
    for (int s = 0; s < pattern->num_symbols(); ++s) {
      seeds_.push_back(Seed{s, false});
    }
  }
}

double PlanOptimizer::EffectiveSelectivity(int ci, const MatcherStats& stats,
                                           const Seed& seed) const {
  const TemporalConstraint& c = pattern_->constraints()[ci];
  double sel = stats.selectivity_ema(ci);
  if (seed.ongoing && (c.a == seed.symbol || c.b == seed.symbol)) {
    const auto& [a_fraction, b_fraction] = ongoing_fraction_[ci];
    sel *= (c.a == seed.symbol) ? a_fraction : b_fraction;
  }
  return sel;
}

double PlanOptimizer::ResultSize(uint32_t subset, const MatcherStats& stats,
                                 const Seed& seed) const {
  double r = 1.0;
  bool any = false;
  for (int s = 0; s < pattern_->num_symbols(); ++s) {
    if (subset & (1u << s)) {
      r *= BufferSize(stats, s);
      any = true;
    }
  }
  if (!any) return 0.0;
  for (int ci = 0; ci < static_cast<int>(pattern_->constraints().size());
       ++ci) {
    const TemporalConstraint& c = pattern_->constraints()[ci];
    if ((subset & (1u << c.a)) && (subset & (1u << c.b))) {
      r *= EffectiveSelectivity(ci, stats, seed);
    }
  }
  return r;
}

double PlanOptimizer::StepCost(int symbol, uint32_t subset,
                               const MatcherStats& stats,
                               const Seed& seed) const {
  int applicable = 0;
  for (const TemporalConstraint& c : pattern_->constraints()) {
    if ((c.a == symbol && (subset & (1u << c.b))) ||
        (c.b == symbol && (subset & (1u << c.a)))) {
      ++applicable;
    }
  }
  const double r_prev = ResultSize(subset, stats, seed);
  const double r_next = ResultSize(subset | (1u << symbol), stats, seed);
  // The binary searches run once per partial configuration reaching the
  // step; an upstream empty result short-circuits the enumeration.
  return r_prev * r_next + std::min(r_prev, 1.0) *
                               FindMatchesCost(BufferSize(stats, symbol),
                                               applicable);
}

double PlanOptimizer::Cost(const std::vector<int>& permutation,
                           const MatcherStats& stats) const {
  // Equation 2 averaged over the seed variants: the seed's own step is
  // intercepted (constraint checks only, negligible), every other step
  // pays the scan cost with the seed's constraints applicable.
  double total = 0.0;
  for (const Seed& seed : seeds_) {
    uint32_t bound = 1u << seed.symbol;
    for (int symbol : permutation) {
      if (symbol == seed.symbol) continue;
      total += StepCost(symbol, bound, stats, seed);
      bound |= 1u << symbol;
    }
  }
  return total / static_cast<double>(seeds_.size());
}

double PlanOptimizer::PaperCost(const std::vector<int>& permutation,
                                const MatcherStats& stats) const {
  double cost = 0.0;
  double r_prev = 0.0;
  uint32_t placed = 0;
  for (size_t i = 0; i < permutation.size(); ++i) {
    const int sym = permutation[i];
    if (i == 0) {
      r_prev = BufferSize(stats, sym);  // |R_1| = |B_1|
      placed = 1u << sym;
      continue;
    }
    const double b = BufferSize(stats, sym);
    double sel = 1.0;
    int applicable = 0;
    for (int ci = 0; ci < static_cast<int>(pattern_->constraints().size());
         ++ci) {
      const TemporalConstraint& c = pattern_->constraints()[ci];
      const bool touches = (c.a == sym && (placed & (1u << c.b))) ||
                           (c.b == sym && (placed & (1u << c.a)));
      if (touches) {
        sel *= stats.selectivity_ema(ci);
        ++applicable;
      }
    }
    const double r = r_prev * b * sel;                     // Equation 3
    cost += r_prev * r + FindMatchesCost(b, applicable);   // Equation 2
    r_prev = r;
    placed |= 1u << sym;
  }
  return cost;
}

bool PlanOptimizer::ConnectedToSubset(int symbol, uint32_t subset) const {
  for (int other = 0; other < pattern_->num_symbols(); ++other) {
    if ((subset & (1u << other)) &&
        pattern_->ConstraintIndex(symbol, other) >= 0) {
      return true;
    }
  }
  return false;
}

std::vector<int> PlanOptimizer::BestOrder(const MatcherStats& stats) const {
  const int n = pattern_->num_symbols();
  const uint32_t full = (1u << n) - 1;
  const double inf = std::numeric_limits<double>::infinity();

  // DP over the set of already-visited order positions. The per-seed
  // trajectories only depend on that subset: for seed s, the bound set
  // after a prefix P is P | {s}, so the summed step cost of appending a
  // symbol is a function of (subset, symbol) alone.
  auto summed_step_cost = [&](uint32_t prefix, int symbol) {
    double total = 0.0;
    for (const Seed& seed : seeds_) {
      if (seed.symbol == symbol) continue;  // intercepted: negligible
      total += StepCost(symbol, prefix | (1u << seed.symbol), stats, seed);
    }
    return total;
  };

  std::vector<double> best_cost(full + 1, inf);
  std::vector<int> best_last(full + 1, -1);

  for (int s = 0; s < n; ++s) {
    best_cost[1u << s] = summed_step_cost(0, s);
    best_last[1u << s] = s;
  }

  for (uint32_t subset = 1; subset <= full; ++subset) {
    if (best_cost[subset] == inf || subset == full) continue;

    // Prefer connected extensions; fall back to cross products only when
    // no symbol outside the subset is connected to it.
    bool any_connected = false;
    for (int s = 0; s < n; ++s) {
      if (!(subset & (1u << s)) && ConnectedToSubset(s, subset)) {
        any_connected = true;
        break;
      }
    }
    for (int s = 0; s < n; ++s) {
      if (subset & (1u << s)) continue;
      if (any_connected && !ConnectedToSubset(s, subset)) continue;
      const uint32_t next = subset | (1u << s);
      const double total = best_cost[subset] + summed_step_cost(subset, s);
      if (total < best_cost[next]) {
        best_cost[next] = total;
        best_last[next] = s;
      }
    }
  }

  std::vector<int> order;
  order.reserve(n);
  uint32_t subset = full;
  while (subset != 0) {
    const int s = best_last[subset];
    order.push_back(s);
    subset &= ~(1u << s);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::vector<int>> PlanOptimizer::EnumerateOrders() const {
  const int n = pattern_->num_symbols();
  std::vector<std::vector<int>> out;
  std::vector<int> current;
  uint32_t placed = 0;

  // Depth-first enumeration with the same cross-product rule as the DP.
  std::function<void()> recurse = [&]() {
    if (static_cast<int>(current.size()) == n) {
      out.push_back(current);
      return;
    }
    bool any_connected = false;
    if (!current.empty()) {
      for (int s = 0; s < n; ++s) {
        if (!(placed & (1u << s)) && ConnectedToSubset(s, placed)) {
          any_connected = true;
          break;
        }
      }
    }
    for (int s = 0; s < n; ++s) {
      if (placed & (1u << s)) continue;
      if (!current.empty() && any_connected && !ConnectedToSubset(s, placed)) {
        continue;
      }
      placed |= 1u << s;
      current.push_back(s);
      recurse();
      current.pop_back();
      placed &= ~(1u << s);
    }
  };
  recurse();
  return out;
}

AdaptiveController::AdaptiveController(const TemporalPattern* pattern,
                                       Options options)
    : optimizer_(pattern, options.low_latency), options_(options) {
  if (options_.plan_cache != nullptr) {
    plan_key_prefix_ = PatternPlanKey(*pattern, options_.low_latency);
  }
  if (options_.metrics != nullptr) {
    reopt_ctr_ = options_.metrics->GetCounter("optimizer.reoptimizations");
    switches_ctr_ = options_.metrics->GetCounter("optimizer.plan_switches");
    buffer_drift_gauge_ = options_.metrics->GetGauge("optimizer.buffer_drift");
    selectivity_drift_gauge_ =
        options_.metrics->GetGauge("optimizer.selectivity_drift");
  }
}

void AdaptiveController::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kController);
  w.I64(calls_);
  w.I64(reoptimizations_);
  w.I64(migrations_);
  w.Bool(initialized_);
  w.U64(snapshot_buffers_.size());
  for (double v : snapshot_buffers_) w.F64(v);
  w.U64(snapshot_selectivities_.size());
  for (double v : snapshot_selectivities_) w.F64(v);
  w.U32(static_cast<uint32_t>(current_order_.size()));
  for (int s : current_order_) w.U32(static_cast<uint32_t>(s));
  w.EndSection(cookie);
}

Status AdaptiveController::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kController);
  const int64_t calls = r.I64();
  const int64_t reoptimizations = r.I64();
  const int64_t migrations = r.I64();
  const bool initialized = r.Bool();
  const uint64_t num_buffers = r.U64();
  if (num_buffers > r.remaining() / 8) {
    r.Fail(Status::ParseError("checkpoint: controller size exceeds input"));
    return r.status();
  }
  std::vector<double> buffers(num_buffers);
  for (double& v : buffers) v = r.F64();
  const uint64_t num_selectivities = r.U64();
  if (num_selectivities > r.remaining() / 8) {
    r.Fail(Status::ParseError("checkpoint: controller size exceeds input"));
    return r.status();
  }
  std::vector<double> selectivities(num_selectivities);
  for (double& v : selectivities) v = r.F64();
  const uint32_t order_size = r.U32();
  if (order_size > r.remaining() / 4) {
    r.Fail(Status::ParseError("checkpoint: controller size exceeds input"));
    return r.status();
  }
  std::vector<int> order(order_size);
  for (int& s : order) s = static_cast<int>(r.U32());
  Status status = r.EndSection(end);
  if (!status.ok()) return status;
  calls_ = calls;
  reoptimizations_ = reoptimizations;
  migrations_ = migrations;
  initialized_ = initialized;
  snapshot_buffers_ = std::move(buffers);
  snapshot_selectivities_ = std::move(selectivities);
  current_order_ = std::move(order);
  return Status::OK();
}

bool AdaptiveController::Drifted(const MatcherStats& stats) const {
  auto deviation = [](double current, double snapshot) {
    const double base = std::max(std::abs(snapshot), 1e-9);
    return std::abs(current - snapshot) / base;
  };
  double max_buffer_dev = 0.0;
  for (size_t i = 0; i < snapshot_buffers_.size(); ++i) {
    max_buffer_dev = std::max(
        max_buffer_dev, deviation(stats.buffer_emas()[i], snapshot_buffers_[i]));
  }
  double max_sel_dev = 0.0;
  for (size_t i = 0; i < snapshot_selectivities_.size(); ++i) {
    max_sel_dev =
        std::max(max_sel_dev, deviation(stats.selectivity_emas()[i],
                                        snapshot_selectivities_[i]));
  }
  if (buffer_drift_gauge_ != nullptr) buffer_drift_gauge_->Set(max_buffer_dev);
  if (selectivity_drift_gauge_ != nullptr) {
    selectivity_drift_gauge_->Set(max_sel_dev);
  }
  return max_buffer_dev > options_.threshold ||
         max_sel_dev > options_.threshold;
}

std::optional<std::vector<int>> AdaptiveController::MaybeReoptimize(
    const MatcherStats& stats) {
  ++calls_;
  if (initialized_) {
    if (calls_ % options_.check_interval != 0) return std::nullopt;
    if (!Drifted(stats)) return std::nullopt;
  }
  snapshot_buffers_ = stats.buffer_emas();
  snapshot_selectivities_ = stats.selectivity_emas();
  ++reoptimizations_;
  if (reopt_ctr_ != nullptr) reopt_ctr_->Inc();
  std::vector<int> order =
      options_.plan_cache != nullptr
          ? options_.plan_cache->GetOrCompute(
                plan_key_prefix_ + StatsPlanKey(stats),
                [&] { return optimizer_.BestOrder(stats); })
          : optimizer_.BestOrder(stats);
  if (initialized_ && order == current_order_) return std::nullopt;
  current_order_ = order;
  initialized_ = true;
  ++migrations_;
  if (switches_ctr_ != nullptr) switches_ctr_->Inc();
  return order;
}

}  // namespace tpstream
