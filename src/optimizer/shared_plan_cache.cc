#include "optimizer/shared_plan_cache.h"

#include <cstdio>
#include <cstring>

namespace tpstream {

namespace {

void AppendDoubleBits(double d, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

}  // namespace

const std::vector<int>& SharedPlanCache::GetOrCompute(
    const std::string& key,
    const std::function<std::vector<int>()>& compute) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_.emplace(key, compute()).first->second;
}

std::string PatternPlanKey(const TemporalPattern& pattern, bool low_latency) {
  std::string key;
  key.reserve(16 + pattern.constraints().size() * 12);
  key.append(low_latency ? "ll" : "bl")
      .append(std::to_string(pattern.num_symbols()));
  for (const TemporalConstraint& c : pattern.constraints()) {
    key.append("|")
        .append(std::to_string(c.a))
        .append(",")
        .append(std::to_string(c.b))
        .append(":")
        .append(std::to_string(c.relations.mask()));
  }
  return key;
}

std::string StatsPlanKey(const MatcherStats& stats) {
  std::string key;
  key.reserve(1 + 17 * (stats.buffer_emas().size() +
                        stats.selectivity_emas().size()));
  for (double ema : stats.buffer_emas()) {
    key.append("b");
    AppendDoubleBits(ema, &key);
  }
  for (double ema : stats.selectivity_emas()) {
    key.append("s");
    AppendDoubleBits(ema, &key);
  }
  return key;
}

}  // namespace tpstream
