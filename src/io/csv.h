#ifndef TPSTREAM_IO_CSV_H_
#define TPSTREAM_IO_CSV_H_

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/status.h"

namespace tpstream {
namespace io {

/// Reads events from CSV text. The first row must be a header; one column
/// (default "timestamp") carries the event time, the remaining columns
/// are matched against the schema by name (extra columns are ignored,
/// missing schema fields become null). Values are parsed according to the
/// schema's field types.
///
///   std::ifstream in("trips.csv");
///   io::CsvEventReader reader(in, schema);
///   Event event;
///   while (true) {
///     auto status = reader.Next(&event);
///     if (!status.ok()) break;       // kNotFound signals end of input
///     op.Push(event);
///   }
class CsvEventReader {
 public:
  struct Options {
    std::string timestamp_column;
    char delimiter;
    Options() : timestamp_column("timestamp"), delimiter(',') {}
  };

  CsvEventReader(std::istream& input, const Schema& schema,
                 Options options = Options());

  /// Reads the next event. Returns kNotFound at end of input and
  /// kParseError (with row context) on malformed rows.
  Status Next(Event* event);

  /// Convenience: reads everything, forwarding to `sink`.
  Status ReadAll(const std::function<void(const Event&)>& sink);

  int64_t rows_read() const { return rows_read_; }

 private:
  Status ParseHeader();

  std::istream& input_;
  const Schema schema_;
  Options options_;
  bool header_parsed_ = false;
  Status header_status_;
  int timestamp_column_ = -1;
  std::vector<int> column_to_field_;  // CSV column -> schema index or -1
  std::vector<std::string> column_names_;  // for parse-error context
  int64_t rows_read_ = 0;
  // Scratch reused across Next() calls: the raw line and its split
  // fields keep their buffers, so steady-state reads don't allocate
  // (string-typed payload values still copy into the event).
  std::string line_;
  std::vector<std::string> fields_;
};

/// Writes events (e.g. the match output of a TPStream operator) as CSV:
/// a header with "timestamp" plus the given column names, then one row
/// per event.
class CsvEventWriter {
 public:
  CsvEventWriter(std::ostream& output, std::vector<std::string> columns,
                 char delimiter = ',');

  void Write(const Event& event);
  int64_t rows_written() const { return rows_written_; }

 private:
  std::ostream& output_;
  char delimiter_;
  int64_t rows_written_ = 0;
};

/// Splits one CSV line honoring double-quoted fields ("" escapes a
/// quote) into `*fields`, reusing its storage (strings are cleared and
/// overwritten in place, so a reader looping over constant-arity rows
/// allocates nothing in steady state). Malformed quoting — characters
/// after a closing quote (`"ab"cd`) or an unterminated quoted field — is
/// a parse error; `*fields` is unspecified then. Exposed for testing.
Status SplitCsvLine(const std::string& line, char delimiter,
                    std::vector<std::string>* fields);

/// Quotes a value for CSV output when needed.
std::string CsvQuote(const std::string& value, char delimiter);

}  // namespace io
}  // namespace tpstream

#endif  // TPSTREAM_IO_CSV_H_
