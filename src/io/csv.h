#ifndef TPSTREAM_IO_CSV_H_
#define TPSTREAM_IO_CSV_H_

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace io {

/// Reads events from CSV text. The first row must be a header; one column
/// (default "timestamp") carries the event time, the remaining columns
/// are matched against the schema by name (extra columns are ignored,
/// missing schema fields become null). Values are parsed according to the
/// schema's field types.
///
///   std::ifstream in("trips.csv");
///   io::CsvEventReader reader(in, schema);
///   Event event;
///   while (true) {
///     auto status = reader.Next(&event);
///     if (!status.ok()) break;       // kNotFound signals end of input
///     op.Push(event);
///   }
class CsvEventReader {
 public:
  /// Malformed-row handling (Degradation contract). Header errors are
  /// always fatal regardless of the mode: without a valid header no row
  /// can be interpreted.
  enum class OnError {
    /// Next() returns kParseError for the bad row (default; the reader
    /// stays usable and the caller decides).
    kStop,
    /// Next() silently skips bad rows and keeps reading: each one is
    /// counted (`csv.quarantined` when metrics are enabled) and routed to
    /// the dead-letter sink (when set) with its row number, parse error,
    /// and raw text.
    kSkipAndQuarantine,
  };

  struct Options {
    std::string timestamp_column;
    char delimiter;
    OnError on_error;
    /// Quarantine destination for kSkipAndQuarantine (not owned; may be
    /// null: rows are then counted but discarded).
    robust::DeadLetterSink* dead_letter;
    /// Counts quarantined rows as `csv.quarantined` (not owned).
    obs::MetricsRegistry* metrics;
    /// Upper bound on quarantined rows in kSkipAndQuarantine mode; once
    /// exceeded Next() returns kResourceExhausted (a poisoned input
    /// should fail loudly, not skip forever). 0 = unlimited.
    size_t max_quarantined;
    Options()
        : timestamp_column("timestamp"),
          delimiter(','),
          on_error(OnError::kStop),
          dead_letter(nullptr),
          metrics(nullptr),
          max_quarantined(0) {}
  };

  CsvEventReader(std::istream& input, const Schema& schema,
                 Options options = Options());

  /// Reads the next event. Returns kNotFound at end of input and
  /// kParseError (with row context) on malformed rows — unless
  /// Options::on_error is kSkipAndQuarantine, in which case bad rows are
  /// quarantined and reading continues (kResourceExhausted once more
  /// than Options::max_quarantined rows were skipped).
  Status Next(Event* event);

  /// Convenience: reads everything, forwarding to `sink`.
  Status ReadAll(const std::function<void(const Event&)>& sink);

  int64_t rows_read() const { return rows_read_; }
  /// Rows skipped under kSkipAndQuarantine.
  int64_t quarantined() const { return quarantined_; }

 private:
  Status ParseHeader();
  /// Parses the row already in `line_` into `*event` (no error-mode
  /// handling; Next() wraps it).
  Status ParseRow(Event* event);
  /// Routes the bad row in `line_` to the dead-letter sink and counts it.
  void Quarantine(const Status& error);

  std::istream& input_;
  const Schema schema_;
  Options options_;
  bool header_parsed_ = false;
  Status header_status_;
  int timestamp_column_ = -1;
  std::vector<int> column_to_field_;  // CSV column -> schema index or -1
  std::vector<std::string> column_names_;  // for parse-error context
  int64_t rows_read_ = 0;
  int64_t quarantined_ = 0;
  obs::Counter* quarantined_ctr_ = nullptr;  // resolved lazily from options
  // Scratch reused across Next() calls: the raw line and its split
  // fields keep their buffers, so steady-state reads don't allocate
  // (string-typed payload values still copy into the event).
  std::string line_;
  std::vector<std::string> fields_;
};

/// Writes events (e.g. the match output of a TPStream operator) as CSV:
/// a header with "timestamp" plus the given column names, then one row
/// per event.
class CsvEventWriter {
 public:
  CsvEventWriter(std::ostream& output, std::vector<std::string> columns,
                 char delimiter = ',');

  void Write(const Event& event);
  int64_t rows_written() const { return rows_written_; }

 private:
  std::ostream& output_;
  char delimiter_;
  int64_t rows_written_ = 0;
};

/// Splits one CSV line honoring double-quoted fields ("" escapes a
/// quote) into `*fields`, reusing its storage (strings are cleared and
/// overwritten in place, so a reader looping over constant-arity rows
/// allocates nothing in steady state). Malformed quoting — characters
/// after a closing quote (`"ab"cd`) or an unterminated quoted field — is
/// a parse error; `*fields` is unspecified then. Exposed for testing.
Status SplitCsvLine(const std::string& line, char delimiter,
                    std::vector<std::string>* fields);

/// Quotes a value for CSV output when needed.
std::string CsvQuote(const std::string& value, char delimiter);

}  // namespace io
}  // namespace tpstream

#endif  // TPSTREAM_IO_CSV_H_
