#include "io/csv.h"

#include <cstdlib>

namespace tpstream {
namespace io {

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string CsvQuote(const std::string& value, char delimiter) {
  if (value.find(delimiter) == std::string::npos &&
      value.find('"') == std::string::npos &&
      value.find('\n') == std::string::npos) {
    return value;
  }
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

CsvEventReader::CsvEventReader(std::istream& input, const Schema& schema,
                               Options options)
    : input_(input), schema_(schema), options_(std::move(options)) {}

Status CsvEventReader::ParseHeader() {
  header_parsed_ = true;
  std::string line;
  if (!std::getline(input_, line)) {
    return Status::ParseError("CSV input is empty (no header)");
  }
  const std::vector<std::string> columns =
      SplitCsvLine(line, options_.delimiter);
  column_to_field_.assign(columns.size(), -1);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == options_.timestamp_column) {
      timestamp_column_ = static_cast<int>(i);
    } else {
      column_to_field_[i] = schema_.IndexOf(columns[i]);
    }
  }
  if (timestamp_column_ < 0) {
    return Status::ParseError("CSV header lacks timestamp column '" +
                              options_.timestamp_column + "'");
  }
  return Status::OK();
}

Status CsvEventReader::Next(Event* event) {
  if (!header_parsed_) header_status_ = ParseHeader();
  if (!header_status_.ok()) return header_status_;

  std::string line;
  do {
    if (!std::getline(input_, line)) {
      return Status::NotFound("end of CSV input");
    }
  } while (line.empty());

  const std::vector<std::string> fields =
      SplitCsvLine(line, options_.delimiter);
  ++rows_read_;
  if (static_cast<int>(fields.size()) <= timestamp_column_) {
    return Status::ParseError("row " + std::to_string(rows_read_) +
                              ": missing timestamp column");
  }

  event->payload.assign(schema_.num_fields(), Value::Null());
  char* end = nullptr;
  event->t = std::strtoll(fields[timestamp_column_].c_str(), &end, 10);
  if (end == fields[timestamp_column_].c_str()) {
    return Status::ParseError("row " + std::to_string(rows_read_) +
                              ": bad timestamp '" +
                              fields[timestamp_column_] + "'");
  }

  for (size_t col = 0;
       col < fields.size() && col < column_to_field_.size(); ++col) {
    const int field = column_to_field_[col];
    if (field < 0) continue;
    const std::string& text = fields[col];
    if (text.empty()) continue;  // null
    switch (schema_.field(field).type) {
      case ValueType::kInt:
        event->payload[field] = Value(
            static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
        break;
      case ValueType::kDouble:
        event->payload[field] = Value(std::strtod(text.c_str(), nullptr));
        break;
      case ValueType::kBool:
        event->payload[field] =
            Value(text == "1" || text == "true" || text == "TRUE");
        break;
      case ValueType::kString:
        event->payload[field] = Value(text);
        break;
      case ValueType::kNull:
        break;
    }
  }
  return Status::OK();
}

Status CsvEventReader::ReadAll(
    const std::function<void(const Event&)>& sink) {
  Event event;
  while (true) {
    const Status status = Next(&event);
    if (status.code() == StatusCode::kNotFound) return Status::OK();
    if (!status.ok()) return status;
    sink(event);
  }
}

CsvEventWriter::CsvEventWriter(std::ostream& output,
                               std::vector<std::string> columns,
                               char delimiter)
    : output_(output), delimiter_(delimiter) {
  output_ << "timestamp";
  for (const std::string& column : columns) {
    output_ << delimiter_ << CsvQuote(column, delimiter_);
  }
  output_ << "\n";
}

void CsvEventWriter::Write(const Event& event) {
  output_ << event.t;
  for (const Value& value : event.payload) {
    output_ << delimiter_ << CsvQuote(value.ToString(), delimiter_);
  }
  output_ << "\n";
  ++rows_written_;
}

}  // namespace io
}  // namespace tpstream
