#include "io/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tpstream {
namespace io {

namespace {

/// Strict int64 parse: the whole string must be consumed and the value
/// must be representable (strtoll's silent clamping on overflow and
/// partial consumption of things like "12x" both count as failures).
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  if (errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// Strict double parse: full consumption required; overflow to +/-inf is
/// rejected, gradual underflow toward zero is accepted.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) return false;
  *out = v;
  return true;
}

}  // namespace

Status SplitCsvLine(const std::string& line, char delimiter,
                    std::vector<std::string>* fields) {
  size_t count = 0;
  auto next_field = [&]() -> std::string* {
    if (count == fields->size()) fields->emplace_back();
    std::string* f = &(*fields)[count++];
    f->clear();
    return f;
  };
  std::string* current = next_field();
  bool quoted = false;       // inside a quoted field
  bool was_quoted = false;   // current field's closing quote was seen
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current->push_back('"');
          ++i;
        } else {
          quoted = false;
          was_quoted = true;
        }
      } else {
        current->push_back(c);
      }
    } else if (c == '"' && current->empty() && !was_quoted) {
      quoted = true;
    } else if (c == delimiter) {
      current = next_field();
      was_quoted = false;
    } else if (c == '\r') {
      // tolerated (CRLF input); dropped
    } else if (was_quoted) {
      return Status::ParseError(
          "unexpected character '" + std::string(1, c) +
          "' after closing quote (column " + std::to_string(count) + ")");
    } else {
      current->push_back(c);
    }
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field (column " +
                              std::to_string(count) + ")");
  }
  fields->resize(count);
  return Status::OK();
}

std::string CsvQuote(const std::string& value, char delimiter) {
  if (value.find(delimiter) == std::string::npos &&
      value.find('"') == std::string::npos &&
      value.find('\n') == std::string::npos) {
    return value;
  }
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

CsvEventReader::CsvEventReader(std::istream& input, const Schema& schema,
                               Options options)
    : input_(input), schema_(schema), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    quarantined_ctr_ = options_.metrics->GetCounter("csv.quarantined");
  }
}

Status CsvEventReader::ParseHeader() {
  header_parsed_ = true;
  if (!std::getline(input_, line_)) {
    return Status::ParseError("CSV input is empty (no header)");
  }
  if (Status s = SplitCsvLine(line_, options_.delimiter, &column_names_);
      !s.ok()) {
    return Status::ParseError("CSV header: " + s.message());
  }
  column_to_field_.assign(column_names_.size(), -1);
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == options_.timestamp_column) {
      timestamp_column_ = static_cast<int>(i);
    } else {
      column_to_field_[i] = schema_.IndexOf(column_names_[i]);
    }
  }
  if (timestamp_column_ < 0) {
    return Status::ParseError("CSV header lacks timestamp column '" +
                              options_.timestamp_column + "'");
  }
  return Status::OK();
}

void CsvEventReader::Quarantine(const Status& error) {
  ++quarantined_;
  if (quarantined_ctr_ != nullptr) quarantined_ctr_->Inc();
  if (options_.dead_letter == nullptr) return;
  robust::DeadLetterItem item;
  item.kind = robust::DeadLetterKind::kCsvRow;
  item.detail = error.message();
  item.row = rows_read_;
  item.raw = line_;
  (void)options_.dead_letter->Consume(std::move(item));
}

Status CsvEventReader::Next(Event* event) {
  if (!header_parsed_) header_status_ = ParseHeader();
  if (!header_status_.ok()) return header_status_;

  for (;;) {
    do {
      if (!std::getline(input_, line_)) {
        return Status::NotFound("end of CSV input");
      }
    } while (line_.empty());
    ++rows_read_;

    Status status = ParseRow(event);
    if (status.ok() || options_.on_error == OnError::kStop) return status;

    // kSkipAndQuarantine: route the bad row to the dead-letter sink and
    // keep reading.
    Quarantine(status);
    if (options_.max_quarantined > 0 &&
        quarantined_ > static_cast<int64_t>(options_.max_quarantined)) {
      return Status::ResourceExhausted(
          "CSV quarantine budget exceeded (" +
          std::to_string(options_.max_quarantined) +
          " rows); last error: " + status.message());
    }
  }
}

Status CsvEventReader::ParseRow(Event* event) {
  const std::string row_context = "row " + std::to_string(rows_read_);
  if (Status s = SplitCsvLine(line_, options_.delimiter, &fields_);
      !s.ok()) {
    return Status::ParseError(row_context + ": " + s.message());
  }
  if (static_cast<int>(fields_.size()) <= timestamp_column_) {
    return Status::ParseError(row_context + ": missing timestamp column");
  }

  event->payload.assign(schema_.num_fields(), Value::Null());
  if (!ParseInt64(fields_[timestamp_column_], &event->t)) {
    return Status::ParseError(row_context + ", column '" +
                              options_.timestamp_column +
                              "': bad timestamp '" +
                              fields_[timestamp_column_] + "'");
  }

  for (size_t col = 0;
       col < fields_.size() && col < column_to_field_.size(); ++col) {
    const int field = column_to_field_[col];
    if (field < 0) continue;
    const std::string& text = fields_[col];
    if (text.empty()) continue;  // null
    switch (schema_.field(field).type) {
      case ValueType::kInt: {
        int64_t v = 0;
        if (!ParseInt64(text, &v)) {
          return Status::ParseError(row_context + ", column '" +
                                    column_names_[col] + "': bad int '" +
                                    text + "'");
        }
        event->payload[field] = Value(v);
        break;
      }
      case ValueType::kDouble: {
        double v = 0.0;
        if (!ParseDouble(text, &v)) {
          return Status::ParseError(row_context + ", column '" +
                                    column_names_[col] +
                                    "': bad double '" + text + "'");
        }
        event->payload[field] = Value(v);
        break;
      }
      case ValueType::kBool:
        event->payload[field] =
            Value(text == "1" || text == "true" || text == "TRUE");
        break;
      case ValueType::kString:
        event->payload[field] = Value(text);
        break;
      case ValueType::kNull:
        break;
    }
  }
  return Status::OK();
}

Status CsvEventReader::ReadAll(
    const std::function<void(const Event&)>& sink) {
  Event event;
  while (true) {
    const Status status = Next(&event);
    if (status.code() == StatusCode::kNotFound) return Status::OK();
    if (!status.ok()) return status;
    sink(event);
  }
}

CsvEventWriter::CsvEventWriter(std::ostream& output,
                               std::vector<std::string> columns,
                               char delimiter)
    : output_(output), delimiter_(delimiter) {
  output_ << "timestamp";
  for (const std::string& column : columns) {
    output_ << delimiter_ << CsvQuote(column, delimiter_);
  }
  output_ << "\n";
}

void CsvEventWriter::Write(const Event& event) {
  output_ << event.t;
  for (const Value& value : event.payload) {
    output_ << delimiter_ << CsvQuote(value.ToString(), delimiter_);
  }
  output_ << "\n";
  ++rows_written_;
}

}  // namespace io
}  // namespace tpstream
