# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-asan/tests/buffer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/concurrency_stress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/csv_test[1]_include.cmake")
include("/root/repo/build-asan/tests/deriver_test[1]_include.cmake")
include("/root/repo/build-asan/tests/detection_test[1]_include.cmake")
include("/root/repo/build-asan/tests/doc_examples_test[1]_include.cmake")
include("/root/repo/build-asan/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build-asan/tests/expression_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/interval_relation_test[1]_include.cmake")
include("/root/repo/build-asan/tests/low_latency_test[1]_include.cmake")
include("/root/repo/build-asan/tests/matcher_test[1]_include.cmake")
include("/root/repo/build-asan/tests/nfa_test[1]_include.cmake")
include("/root/repo/build-asan/tests/operator_test[1]_include.cmake")
include("/root/repo/build-asan/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/parser_test[1]_include.cmake")
include("/root/repo/build-asan/tests/partition_hash_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_sweeps_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pattern_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/range_bounds_test[1]_include.cmake")
include("/root/repo/build-asan/tests/reorder_buffer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/value_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_test[1]_include.cmake")
