file(REMOVE_RECURSE
  "CMakeFiles/patient_monitoring.dir/patient_monitoring.cpp.o"
  "CMakeFiles/patient_monitoring.dir/patient_monitoring.cpp.o.d"
  "patient_monitoring"
  "patient_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patient_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
