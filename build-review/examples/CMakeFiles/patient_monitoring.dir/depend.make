# Empty dependencies file for patient_monitoring.
# This may be replaced when dependencies are built.
