# Empty dependencies file for aggressive_driving.
# This may be replaced when dependencies are built.
