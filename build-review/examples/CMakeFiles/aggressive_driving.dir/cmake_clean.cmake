file(REMOVE_RECURSE
  "CMakeFiles/aggressive_driving.dir/aggressive_driving.cpp.o"
  "CMakeFiles/aggressive_driving.dir/aggressive_driving.cpp.o.d"
  "aggressive_driving"
  "aggressive_driving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggressive_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
