# Empty dependencies file for bench_fig7a_apptime_latency.
# This may be replaced when dependencies are built.
