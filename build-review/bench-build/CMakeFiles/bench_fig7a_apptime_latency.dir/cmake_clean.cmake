file(REMOVE_RECURSE
  "../bench/bench_fig7a_apptime_latency"
  "../bench/bench_fig7a_apptime_latency.pdb"
  "CMakeFiles/bench_fig7a_apptime_latency.dir/bench_fig7a_apptime_latency.cc.o"
  "CMakeFiles/bench_fig7a_apptime_latency.dir/bench_fig7a_apptime_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_apptime_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
