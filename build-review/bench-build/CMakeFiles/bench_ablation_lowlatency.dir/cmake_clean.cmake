file(REMOVE_RECURSE
  "../bench/bench_ablation_lowlatency"
  "../bench/bench_ablation_lowlatency.pdb"
  "CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cc.o"
  "CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lowlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
