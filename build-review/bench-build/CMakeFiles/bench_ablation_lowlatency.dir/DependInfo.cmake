
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_lowlatency.cc" "bench-build/CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cc.o" "gcc" "bench-build/CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baselines/CMakeFiles/tpstream_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/tpstream_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/tpstream_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cep/CMakeFiles/tpstream_cep.dir/DependInfo.cmake"
  "/root/repo/build-review/src/derive/CMakeFiles/tpstream_derive.dir/DependInfo.cmake"
  "/root/repo/build-review/src/expr/CMakeFiles/tpstream_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/optimizer/CMakeFiles/tpstream_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matcher/CMakeFiles/tpstream_matcher.dir/DependInfo.cmake"
  "/root/repo/build-review/src/algebra/CMakeFiles/tpstream_algebra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tpstream_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/tpstream_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
