# Empty dependencies file for bench_ablation_lowlatency.
# This may be replaced when dependencies are built.
