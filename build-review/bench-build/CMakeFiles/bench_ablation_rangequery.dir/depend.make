# Empty dependencies file for bench_ablation_rangequery.
# This may be replaced when dependencies are built.
