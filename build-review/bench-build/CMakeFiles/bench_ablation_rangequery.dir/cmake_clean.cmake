file(REMOVE_RECURSE
  "../bench/bench_ablation_rangequery"
  "../bench/bench_ablation_rangequery.pdb"
  "CMakeFiles/bench_ablation_rangequery.dir/bench_ablation_rangequery.cc.o"
  "CMakeFiles/bench_ablation_rangequery.dir/bench_ablation_rangequery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rangequery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
