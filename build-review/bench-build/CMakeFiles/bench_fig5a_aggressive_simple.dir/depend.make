# Empty dependencies file for bench_fig5a_aggressive_simple.
# This may be replaced when dependencies are built.
