file(REMOVE_RECURSE
  "../bench/bench_fig5a_aggressive_simple"
  "../bench/bench_fig5a_aggressive_simple.pdb"
  "CMakeFiles/bench_fig5a_aggressive_simple.dir/bench_fig5a_aggressive_simple.cc.o"
  "CMakeFiles/bench_fig5a_aggressive_simple.dir/bench_fig5a_aggressive_simple.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_aggressive_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
