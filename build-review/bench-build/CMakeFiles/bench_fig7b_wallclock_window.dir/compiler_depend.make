# Empty compiler generated dependencies file for bench_fig7b_wallclock_window.
# This may be replaced when dependencies are built.
