file(REMOVE_RECURSE
  "../bench/bench_fig7b_wallclock_window"
  "../bench/bench_fig7b_wallclock_window.pdb"
  "CMakeFiles/bench_fig7b_wallclock_window.dir/bench_fig7b_wallclock_window.cc.o"
  "CMakeFiles/bench_fig7b_wallclock_window.dir/bench_fig7b_wallclock_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_wallclock_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
