file(REMOVE_RECURSE
  "../bench/bench_fig7c_wallclock_rate"
  "../bench/bench_fig7c_wallclock_rate.pdb"
  "CMakeFiles/bench_fig7c_wallclock_rate.dir/bench_fig7c_wallclock_rate.cc.o"
  "CMakeFiles/bench_fig7c_wallclock_rate.dir/bench_fig7c_wallclock_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_wallclock_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
