# Empty dependencies file for bench_fig7c_wallclock_rate.
# This may be replaced when dependencies are built.
