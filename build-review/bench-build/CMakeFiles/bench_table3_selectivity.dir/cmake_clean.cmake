file(REMOVE_RECURSE
  "../bench/bench_table3_selectivity"
  "../bench/bench_table3_selectivity.pdb"
  "CMakeFiles/bench_table3_selectivity.dir/bench_table3_selectivity.cc.o"
  "CMakeFiles/bench_table3_selectivity.dir/bench_table3_selectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
