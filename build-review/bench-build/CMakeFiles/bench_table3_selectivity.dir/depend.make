# Empty dependencies file for bench_table3_selectivity.
# This may be replaced when dependencies are built.
