file(REMOVE_RECURSE
  "../bench/bench_fig6_query_patterns"
  "../bench/bench_fig6_query_patterns.pdb"
  "CMakeFiles/bench_fig6_query_patterns.dir/bench_fig6_query_patterns.cc.o"
  "CMakeFiles/bench_fig6_query_patterns.dir/bench_fig6_query_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_query_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
