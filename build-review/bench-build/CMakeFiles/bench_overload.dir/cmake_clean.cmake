file(REMOVE_RECURSE
  "../bench/bench_overload"
  "../bench/bench_overload.pdb"
  "CMakeFiles/bench_overload.dir/bench_overload.cc.o"
  "CMakeFiles/bench_overload.dir/bench_overload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
