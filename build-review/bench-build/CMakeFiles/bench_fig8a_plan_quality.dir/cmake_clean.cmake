file(REMOVE_RECURSE
  "../bench/bench_fig8a_plan_quality"
  "../bench/bench_fig8a_plan_quality.pdb"
  "CMakeFiles/bench_fig8a_plan_quality.dir/bench_fig8a_plan_quality.cc.o"
  "CMakeFiles/bench_fig8a_plan_quality.dir/bench_fig8a_plan_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_plan_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
