# Empty dependencies file for bench_fig8a_plan_quality.
# This may be replaced when dependencies are built.
