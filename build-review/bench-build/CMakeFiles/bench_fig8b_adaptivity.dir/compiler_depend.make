# Empty compiler generated dependencies file for bench_fig8b_adaptivity.
# This may be replaced when dependencies are built.
