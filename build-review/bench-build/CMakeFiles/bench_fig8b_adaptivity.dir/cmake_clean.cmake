file(REMOVE_RECURSE
  "../bench/bench_fig8b_adaptivity"
  "../bench/bench_fig8b_adaptivity.pdb"
  "CMakeFiles/bench_fig8b_adaptivity.dir/bench_fig8b_adaptivity.cc.o"
  "CMakeFiles/bench_fig8b_adaptivity.dir/bench_fig8b_adaptivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
