file(REMOVE_RECURSE
  "../bench/bench_fig5c_disconnected"
  "../bench/bench_fig5c_disconnected.pdb"
  "CMakeFiles/bench_fig5c_disconnected.dir/bench_fig5c_disconnected.cc.o"
  "CMakeFiles/bench_fig5c_disconnected.dir/bench_fig5c_disconnected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_disconnected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
