file(REMOVE_RECURSE
  "../bench/bench_fig5b_aggressive_full"
  "../bench/bench_fig5b_aggressive_full.pdb"
  "CMakeFiles/bench_fig5b_aggressive_full.dir/bench_fig5b_aggressive_full.cc.o"
  "CMakeFiles/bench_fig5b_aggressive_full.dir/bench_fig5b_aggressive_full.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_aggressive_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
