# Empty compiler generated dependencies file for bench_fig5b_aggressive_full.
# This may be replaced when dependencies are built.
