file(REMOVE_RECURSE
  "libtpstream_workload.a"
)
