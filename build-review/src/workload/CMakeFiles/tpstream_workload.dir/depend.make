# Empty dependencies file for tpstream_workload.
# This may be replaced when dependencies are built.
