file(REMOVE_RECURSE
  "CMakeFiles/tpstream_workload.dir/interval_source.cc.o"
  "CMakeFiles/tpstream_workload.dir/interval_source.cc.o.d"
  "CMakeFiles/tpstream_workload.dir/linear_road.cc.o"
  "CMakeFiles/tpstream_workload.dir/linear_road.cc.o.d"
  "CMakeFiles/tpstream_workload.dir/market.cc.o"
  "CMakeFiles/tpstream_workload.dir/market.cc.o.d"
  "CMakeFiles/tpstream_workload.dir/synthetic.cc.o"
  "CMakeFiles/tpstream_workload.dir/synthetic.cc.o.d"
  "libtpstream_workload.a"
  "libtpstream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
