
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/interval_source.cc" "src/workload/CMakeFiles/tpstream_workload.dir/interval_source.cc.o" "gcc" "src/workload/CMakeFiles/tpstream_workload.dir/interval_source.cc.o.d"
  "/root/repo/src/workload/linear_road.cc" "src/workload/CMakeFiles/tpstream_workload.dir/linear_road.cc.o" "gcc" "src/workload/CMakeFiles/tpstream_workload.dir/linear_road.cc.o.d"
  "/root/repo/src/workload/market.cc" "src/workload/CMakeFiles/tpstream_workload.dir/market.cc.o" "gcc" "src/workload/CMakeFiles/tpstream_workload.dir/market.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/tpstream_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/tpstream_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
