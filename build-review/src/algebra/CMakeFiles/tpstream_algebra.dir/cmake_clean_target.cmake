file(REMOVE_RECURSE
  "libtpstream_algebra.a"
)
