# Empty dependencies file for tpstream_algebra.
# This may be replaced when dependencies are built.
