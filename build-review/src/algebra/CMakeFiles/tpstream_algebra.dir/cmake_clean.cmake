file(REMOVE_RECURSE
  "CMakeFiles/tpstream_algebra.dir/detection.cc.o"
  "CMakeFiles/tpstream_algebra.dir/detection.cc.o.d"
  "CMakeFiles/tpstream_algebra.dir/interval_relation.cc.o"
  "CMakeFiles/tpstream_algebra.dir/interval_relation.cc.o.d"
  "CMakeFiles/tpstream_algebra.dir/pattern.cc.o"
  "CMakeFiles/tpstream_algebra.dir/pattern.cc.o.d"
  "CMakeFiles/tpstream_algebra.dir/range_bounds.cc.o"
  "CMakeFiles/tpstream_algebra.dir/range_bounds.cc.o.d"
  "libtpstream_algebra.a"
  "libtpstream_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
