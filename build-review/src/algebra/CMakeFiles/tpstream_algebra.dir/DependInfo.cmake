
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/detection.cc" "src/algebra/CMakeFiles/tpstream_algebra.dir/detection.cc.o" "gcc" "src/algebra/CMakeFiles/tpstream_algebra.dir/detection.cc.o.d"
  "/root/repo/src/algebra/interval_relation.cc" "src/algebra/CMakeFiles/tpstream_algebra.dir/interval_relation.cc.o" "gcc" "src/algebra/CMakeFiles/tpstream_algebra.dir/interval_relation.cc.o.d"
  "/root/repo/src/algebra/pattern.cc" "src/algebra/CMakeFiles/tpstream_algebra.dir/pattern.cc.o" "gcc" "src/algebra/CMakeFiles/tpstream_algebra.dir/pattern.cc.o.d"
  "/root/repo/src/algebra/range_bounds.cc" "src/algebra/CMakeFiles/tpstream_algebra.dir/range_bounds.cc.o" "gcc" "src/algebra/CMakeFiles/tpstream_algebra.dir/range_bounds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
