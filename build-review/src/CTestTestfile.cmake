# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("robust")
subdirs("algebra")
subdirs("expr")
subdirs("derive")
subdirs("matcher")
subdirs("optimizer")
subdirs("core")
subdirs("query")
subdirs("cep")
subdirs("baselines")
subdirs("workload")
subdirs("ooo")
subdirs("parallel")
subdirs("io")
subdirs("pipeline")
