file(REMOVE_RECURSE
  "CMakeFiles/tpstream_parallel.dir/parallel_operator.cc.o"
  "CMakeFiles/tpstream_parallel.dir/parallel_operator.cc.o.d"
  "libtpstream_parallel.a"
  "libtpstream_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
