# Empty compiler generated dependencies file for tpstream_parallel.
# This may be replaced when dependencies are built.
