file(REMOVE_RECURSE
  "libtpstream_parallel.a"
)
