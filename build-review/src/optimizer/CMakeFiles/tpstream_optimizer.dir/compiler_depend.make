# Empty compiler generated dependencies file for tpstream_optimizer.
# This may be replaced when dependencies are built.
