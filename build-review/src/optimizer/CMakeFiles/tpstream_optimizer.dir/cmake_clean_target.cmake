file(REMOVE_RECURSE
  "libtpstream_optimizer.a"
)
