file(REMOVE_RECURSE
  "CMakeFiles/tpstream_optimizer.dir/plan_optimizer.cc.o"
  "CMakeFiles/tpstream_optimizer.dir/plan_optimizer.cc.o.d"
  "libtpstream_optimizer.a"
  "libtpstream_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
