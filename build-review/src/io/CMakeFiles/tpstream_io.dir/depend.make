# Empty dependencies file for tpstream_io.
# This may be replaced when dependencies are built.
