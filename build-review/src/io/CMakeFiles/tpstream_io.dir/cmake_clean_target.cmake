file(REMOVE_RECURSE
  "libtpstream_io.a"
)
