file(REMOVE_RECURSE
  "CMakeFiles/tpstream_io.dir/csv.cc.o"
  "CMakeFiles/tpstream_io.dir/csv.cc.o.d"
  "libtpstream_io.a"
  "libtpstream_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
