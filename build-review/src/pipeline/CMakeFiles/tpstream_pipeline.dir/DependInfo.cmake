
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/pipeline.cc" "src/pipeline/CMakeFiles/tpstream_pipeline.dir/pipeline.cc.o" "gcc" "src/pipeline/CMakeFiles/tpstream_pipeline.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/tpstream_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ooo/CMakeFiles/tpstream_ooo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/derive/CMakeFiles/tpstream_derive.dir/DependInfo.cmake"
  "/root/repo/build-review/src/expr/CMakeFiles/tpstream_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/optimizer/CMakeFiles/tpstream_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matcher/CMakeFiles/tpstream_matcher.dir/DependInfo.cmake"
  "/root/repo/build-review/src/algebra/CMakeFiles/tpstream_algebra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tpstream_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/tpstream_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
