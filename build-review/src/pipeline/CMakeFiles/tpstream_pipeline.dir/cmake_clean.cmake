file(REMOVE_RECURSE
  "CMakeFiles/tpstream_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/tpstream_pipeline.dir/pipeline.cc.o.d"
  "libtpstream_pipeline.a"
  "libtpstream_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
