file(REMOVE_RECURSE
  "libtpstream_pipeline.a"
)
