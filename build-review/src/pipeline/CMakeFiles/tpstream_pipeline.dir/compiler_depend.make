# Empty compiler generated dependencies file for tpstream_pipeline.
# This may be replaced when dependencies are built.
