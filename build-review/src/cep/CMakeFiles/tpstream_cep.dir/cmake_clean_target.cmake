file(REMOVE_RECURSE
  "libtpstream_cep.a"
)
