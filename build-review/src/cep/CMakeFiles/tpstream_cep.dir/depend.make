# Empty dependencies file for tpstream_cep.
# This may be replaced when dependencies are built.
