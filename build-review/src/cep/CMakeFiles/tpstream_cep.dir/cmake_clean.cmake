file(REMOVE_RECURSE
  "CMakeFiles/tpstream_cep.dir/nfa.cc.o"
  "CMakeFiles/tpstream_cep.dir/nfa.cc.o.d"
  "libtpstream_cep.a"
  "libtpstream_cep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
