file(REMOVE_RECURSE
  "libtpstream_derive.a"
)
