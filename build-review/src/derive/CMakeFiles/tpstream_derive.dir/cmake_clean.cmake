file(REMOVE_RECURSE
  "CMakeFiles/tpstream_derive.dir/deriver.cc.o"
  "CMakeFiles/tpstream_derive.dir/deriver.cc.o.d"
  "libtpstream_derive.a"
  "libtpstream_derive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_derive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
