# Empty dependencies file for tpstream_derive.
# This may be replaced when dependencies are built.
