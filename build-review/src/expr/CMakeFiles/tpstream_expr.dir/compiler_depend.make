# Empty compiler generated dependencies file for tpstream_expr.
# This may be replaced when dependencies are built.
