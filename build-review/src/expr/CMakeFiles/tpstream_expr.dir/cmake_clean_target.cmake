file(REMOVE_RECURSE
  "libtpstream_expr.a"
)
