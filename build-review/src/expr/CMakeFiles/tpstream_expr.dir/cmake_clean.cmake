file(REMOVE_RECURSE
  "CMakeFiles/tpstream_expr.dir/aggregate.cc.o"
  "CMakeFiles/tpstream_expr.dir/aggregate.cc.o.d"
  "CMakeFiles/tpstream_expr.dir/expression.cc.o"
  "CMakeFiles/tpstream_expr.dir/expression.cc.o.d"
  "libtpstream_expr.a"
  "libtpstream_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
