file(REMOVE_RECURSE
  "CMakeFiles/tpstream_query.dir/builder.cc.o"
  "CMakeFiles/tpstream_query.dir/builder.cc.o.d"
  "CMakeFiles/tpstream_query.dir/lexer.cc.o"
  "CMakeFiles/tpstream_query.dir/lexer.cc.o.d"
  "CMakeFiles/tpstream_query.dir/parser.cc.o"
  "CMakeFiles/tpstream_query.dir/parser.cc.o.d"
  "libtpstream_query.a"
  "libtpstream_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
