# Empty dependencies file for tpstream_query.
# This may be replaced when dependencies are built.
