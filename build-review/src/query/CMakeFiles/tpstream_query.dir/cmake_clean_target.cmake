file(REMOVE_RECURSE
  "libtpstream_query.a"
)
