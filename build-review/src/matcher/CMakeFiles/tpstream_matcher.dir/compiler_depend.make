# Empty compiler generated dependencies file for tpstream_matcher.
# This may be replaced when dependencies are built.
