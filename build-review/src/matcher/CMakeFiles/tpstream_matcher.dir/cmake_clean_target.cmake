file(REMOVE_RECURSE
  "libtpstream_matcher.a"
)
