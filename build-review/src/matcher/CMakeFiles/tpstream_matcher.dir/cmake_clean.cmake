file(REMOVE_RECURSE
  "CMakeFiles/tpstream_matcher.dir/eval_order.cc.o"
  "CMakeFiles/tpstream_matcher.dir/eval_order.cc.o.d"
  "CMakeFiles/tpstream_matcher.dir/index_ranges.cc.o"
  "CMakeFiles/tpstream_matcher.dir/index_ranges.cc.o.d"
  "CMakeFiles/tpstream_matcher.dir/joiner.cc.o"
  "CMakeFiles/tpstream_matcher.dir/joiner.cc.o.d"
  "CMakeFiles/tpstream_matcher.dir/low_latency_matcher.cc.o"
  "CMakeFiles/tpstream_matcher.dir/low_latency_matcher.cc.o.d"
  "CMakeFiles/tpstream_matcher.dir/matcher.cc.o"
  "CMakeFiles/tpstream_matcher.dir/matcher.cc.o.d"
  "CMakeFiles/tpstream_matcher.dir/stats.cc.o"
  "CMakeFiles/tpstream_matcher.dir/stats.cc.o.d"
  "libtpstream_matcher.a"
  "libtpstream_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
