
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matcher/eval_order.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/eval_order.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/eval_order.cc.o.d"
  "/root/repo/src/matcher/index_ranges.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/index_ranges.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/index_ranges.cc.o.d"
  "/root/repo/src/matcher/joiner.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/joiner.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/joiner.cc.o.d"
  "/root/repo/src/matcher/low_latency_matcher.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/low_latency_matcher.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/low_latency_matcher.cc.o.d"
  "/root/repo/src/matcher/matcher.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/matcher.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/matcher.cc.o.d"
  "/root/repo/src/matcher/stats.cc" "src/matcher/CMakeFiles/tpstream_matcher.dir/stats.cc.o" "gcc" "src/matcher/CMakeFiles/tpstream_matcher.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/algebra/CMakeFiles/tpstream_algebra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tpstream_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/tpstream_robust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
