file(REMOVE_RECURSE
  "libtpstream_common.a"
)
