# Empty dependencies file for tpstream_common.
# This may be replaced when dependencies are built.
