file(REMOVE_RECURSE
  "CMakeFiles/tpstream_common.dir/schema.cc.o"
  "CMakeFiles/tpstream_common.dir/schema.cc.o.d"
  "CMakeFiles/tpstream_common.dir/value.cc.o"
  "CMakeFiles/tpstream_common.dir/value.cc.o.d"
  "libtpstream_common.a"
  "libtpstream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
