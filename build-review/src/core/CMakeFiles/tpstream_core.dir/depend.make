# Empty dependencies file for tpstream_core.
# This may be replaced when dependencies are built.
