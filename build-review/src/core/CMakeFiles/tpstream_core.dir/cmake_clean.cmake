file(REMOVE_RECURSE
  "CMakeFiles/tpstream_core.dir/operator.cc.o"
  "CMakeFiles/tpstream_core.dir/operator.cc.o.d"
  "CMakeFiles/tpstream_core.dir/partitioned_operator.cc.o"
  "CMakeFiles/tpstream_core.dir/partitioned_operator.cc.o.d"
  "CMakeFiles/tpstream_core.dir/query_spec.cc.o"
  "CMakeFiles/tpstream_core.dir/query_spec.cc.o.d"
  "libtpstream_core.a"
  "libtpstream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
