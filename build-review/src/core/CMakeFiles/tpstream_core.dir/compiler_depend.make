# Empty compiler generated dependencies file for tpstream_core.
# This may be replaced when dependencies are built.
