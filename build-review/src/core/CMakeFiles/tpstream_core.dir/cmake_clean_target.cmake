file(REMOVE_RECURSE
  "libtpstream_core.a"
)
