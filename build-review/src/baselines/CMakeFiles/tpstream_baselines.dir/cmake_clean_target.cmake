file(REMOVE_RECURSE
  "libtpstream_baselines.a"
)
