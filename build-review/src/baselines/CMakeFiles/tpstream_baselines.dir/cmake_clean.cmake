file(REMOVE_RECURSE
  "CMakeFiles/tpstream_baselines.dir/iseq.cc.o"
  "CMakeFiles/tpstream_baselines.dir/iseq.cc.o.d"
  "CMakeFiles/tpstream_baselines.dir/strawman.cc.o"
  "CMakeFiles/tpstream_baselines.dir/strawman.cc.o.d"
  "libtpstream_baselines.a"
  "libtpstream_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
