# Empty compiler generated dependencies file for tpstream_baselines.
# This may be replaced when dependencies are built.
