# Empty compiler generated dependencies file for tpstream_obs.
# This may be replaced when dependencies are built.
