file(REMOVE_RECURSE
  "libtpstream_obs.a"
)
