file(REMOVE_RECURSE
  "CMakeFiles/tpstream_obs.dir/metrics.cc.o"
  "CMakeFiles/tpstream_obs.dir/metrics.cc.o.d"
  "libtpstream_obs.a"
  "libtpstream_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
