file(REMOVE_RECURSE
  "CMakeFiles/tpstream_robust.dir/dead_letter.cc.o"
  "CMakeFiles/tpstream_robust.dir/dead_letter.cc.o.d"
  "CMakeFiles/tpstream_robust.dir/overload_policy.cc.o"
  "CMakeFiles/tpstream_robust.dir/overload_policy.cc.o.d"
  "libtpstream_robust.a"
  "libtpstream_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
