
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/dead_letter.cc" "src/robust/CMakeFiles/tpstream_robust.dir/dead_letter.cc.o" "gcc" "src/robust/CMakeFiles/tpstream_robust.dir/dead_letter.cc.o.d"
  "/root/repo/src/robust/overload_policy.cc" "src/robust/CMakeFiles/tpstream_robust.dir/overload_policy.cc.o" "gcc" "src/robust/CMakeFiles/tpstream_robust.dir/overload_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
