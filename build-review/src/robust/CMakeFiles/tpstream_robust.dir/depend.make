# Empty dependencies file for tpstream_robust.
# This may be replaced when dependencies are built.
