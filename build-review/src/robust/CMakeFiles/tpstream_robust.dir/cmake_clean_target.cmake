file(REMOVE_RECURSE
  "libtpstream_robust.a"
)
