# Empty dependencies file for tpstream_ooo.
# This may be replaced when dependencies are built.
