file(REMOVE_RECURSE
  "libtpstream_ooo.a"
)
