file(REMOVE_RECURSE
  "CMakeFiles/tpstream_ooo.dir/reorder_buffer.cc.o"
  "CMakeFiles/tpstream_ooo.dir/reorder_buffer.cc.o.d"
  "libtpstream_ooo.a"
  "libtpstream_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpstream_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
