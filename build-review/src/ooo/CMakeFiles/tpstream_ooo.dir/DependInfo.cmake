
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooo/reorder_buffer.cc" "src/ooo/CMakeFiles/tpstream_ooo.dir/reorder_buffer.cc.o" "gcc" "src/ooo/CMakeFiles/tpstream_ooo.dir/reorder_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/tpstream_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tpstream_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/tpstream_robust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
