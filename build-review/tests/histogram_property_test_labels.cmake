foreach(t ${histogram_property_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency;metrics")
endforeach()
