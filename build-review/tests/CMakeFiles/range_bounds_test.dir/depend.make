# Empty dependencies file for range_bounds_test.
# This may be replaced when dependencies are built.
