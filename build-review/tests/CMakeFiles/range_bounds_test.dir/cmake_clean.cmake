file(REMOVE_RECURSE
  "CMakeFiles/range_bounds_test.dir/range_bounds_test.cc.o"
  "CMakeFiles/range_bounds_test.dir/range_bounds_test.cc.o.d"
  "range_bounds_test"
  "range_bounds_test.pdb"
  "range_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
