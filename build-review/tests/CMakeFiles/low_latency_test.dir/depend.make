# Empty dependencies file for low_latency_test.
# This may be replaced when dependencies are built.
