file(REMOVE_RECURSE
  "CMakeFiles/low_latency_test.dir/low_latency_test.cc.o"
  "CMakeFiles/low_latency_test.dir/low_latency_test.cc.o.d"
  "low_latency_test"
  "low_latency_test.pdb"
  "low_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
