file(REMOVE_RECURSE
  "CMakeFiles/metrics_differential_test.dir/metrics_differential_test.cc.o"
  "CMakeFiles/metrics_differential_test.dir/metrics_differential_test.cc.o.d"
  "metrics_differential_test"
  "metrics_differential_test.pdb"
  "metrics_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
