file(REMOVE_RECURSE
  "CMakeFiles/histogram_property_test.dir/histogram_property_test.cc.o"
  "CMakeFiles/histogram_property_test.dir/histogram_property_test.cc.o.d"
  "histogram_property_test"
  "histogram_property_test.pdb"
  "histogram_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
