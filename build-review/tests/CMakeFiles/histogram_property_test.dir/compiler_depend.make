# Empty compiler generated dependencies file for histogram_property_test.
# This may be replaced when dependencies are built.
