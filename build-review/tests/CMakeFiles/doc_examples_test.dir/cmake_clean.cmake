file(REMOVE_RECURSE
  "CMakeFiles/doc_examples_test.dir/doc_examples_test.cc.o"
  "CMakeFiles/doc_examples_test.dir/doc_examples_test.cc.o.d"
  "doc_examples_test"
  "doc_examples_test.pdb"
  "doc_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
