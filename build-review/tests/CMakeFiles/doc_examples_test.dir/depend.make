# Empty dependencies file for doc_examples_test.
# This may be replaced when dependencies are built.
