file(REMOVE_RECURSE
  "CMakeFiles/metrics_export_test.dir/metrics_export_test.cc.o"
  "CMakeFiles/metrics_export_test.dir/metrics_export_test.cc.o.d"
  "metrics_export_test"
  "metrics_export_test.pdb"
  "metrics_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
