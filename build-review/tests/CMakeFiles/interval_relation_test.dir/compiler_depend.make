# Empty compiler generated dependencies file for interval_relation_test.
# This may be replaced when dependencies are built.
