file(REMOVE_RECURSE
  "CMakeFiles/interval_relation_test.dir/interval_relation_test.cc.o"
  "CMakeFiles/interval_relation_test.dir/interval_relation_test.cc.o.d"
  "interval_relation_test"
  "interval_relation_test.pdb"
  "interval_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
