# Empty dependencies file for deriver_test.
# This may be replaced when dependencies are built.
