file(REMOVE_RECURSE
  "CMakeFiles/deriver_test.dir/deriver_test.cc.o"
  "CMakeFiles/deriver_test.dir/deriver_test.cc.o.d"
  "deriver_test"
  "deriver_test.pdb"
  "deriver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deriver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
