# Empty dependencies file for operator_test.
# This may be replaced when dependencies are built.
