file(REMOVE_RECURSE
  "CMakeFiles/operator_test.dir/operator_test.cc.o"
  "CMakeFiles/operator_test.dir/operator_test.cc.o.d"
  "operator_test"
  "operator_test.pdb"
  "operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
