file(REMOVE_RECURSE
  "CMakeFiles/partition_hash_test.dir/partition_hash_test.cc.o"
  "CMakeFiles/partition_hash_test.dir/partition_hash_test.cc.o.d"
  "partition_hash_test"
  "partition_hash_test.pdb"
  "partition_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
