# Empty dependencies file for partition_hash_test.
# This may be replaced when dependencies are built.
