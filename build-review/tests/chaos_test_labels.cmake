foreach(t ${chaos_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency;chaos")
endforeach()
