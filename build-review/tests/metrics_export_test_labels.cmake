foreach(t ${metrics_export_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "metrics")
endforeach()
