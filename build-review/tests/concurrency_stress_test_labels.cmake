foreach(t ${concurrency_stress_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency")
endforeach()
