foreach(t ${spsc_ring_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency")
endforeach()
