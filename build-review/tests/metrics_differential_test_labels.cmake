foreach(t ${metrics_differential_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency;metrics")
endforeach()
