foreach(t ${parallel_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency")
endforeach()
