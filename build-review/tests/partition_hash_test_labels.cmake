foreach(t ${partition_hash_test_TESTS})
  set_tests_properties(${t} PROPERTIES LABELS "concurrency")
endforeach()
