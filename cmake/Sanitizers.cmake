# Sanitizer wiring for every tpstream target.
#
# TPSTREAM_SANITIZE selects one or more sanitizers as a comma-separated
# list: `address`, `undefined`, `thread`, or combinations such as
# `address,undefined`. `thread` is mutually exclusive with `address`
# (the runtimes cannot coexist in one process).
#
# The flags live on the `tpstream_sanitizers` INTERFACE library, which
# every module, test, bench, and example target links. The target always
# exists (empty when TPSTREAM_SANITIZE is unset), so link lines never
# need to be conditional.
#
# Typical presets (see README.md "Sanitizers & CI"):
#   cmake -B build-asan -DCMAKE_BUILD_TYPE=Debug \
#         -DTPSTREAM_SANITIZE=address,undefined
#   cmake -B build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
#         -DTPSTREAM_SANITIZE=thread

set(TPSTREAM_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable: address, undefined, thread")
set_property(CACHE TPSTREAM_SANITIZE PROPERTY STRINGS
             "" "address" "undefined" "thread" "address,undefined")

add_library(tpstream_sanitizers INTERFACE)

if(TPSTREAM_SANITIZE)
  string(REPLACE "," ";" _tpstream_san_list "${TPSTREAM_SANITIZE}")
  set(_tpstream_san_flags "")
  foreach(_san IN LISTS _tpstream_san_list)
    string(STRIP "${_san}" _san)
    if(NOT _san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
              "TPSTREAM_SANITIZE: unknown sanitizer '${_san}' "
              "(expected address, undefined, or thread)")
    endif()
    list(APPEND _tpstream_san_flags "-fsanitize=${_san}")
  endforeach()
  if("-fsanitize=thread" IN_LIST _tpstream_san_flags AND
     "-fsanitize=address" IN_LIST _tpstream_san_flags)
    message(FATAL_ERROR
            "TPSTREAM_SANITIZE: thread and address are mutually exclusive")
  endif()
  list(REMOVE_DUPLICATES _tpstream_san_flags)

  # Frame pointers and debug info keep sanitizer reports symbolized even
  # in optimized builds.
  list(APPEND _tpstream_san_flags -fno-omit-frame-pointer -g)

  target_compile_options(tpstream_sanitizers INTERFACE ${_tpstream_san_flags})
  target_link_options(tpstream_sanitizers INTERFACE ${_tpstream_san_flags})

  # Undefined behaviour must abort (and so fail ctest) instead of printing
  # a diagnostic and continuing.
  if("-fsanitize=undefined" IN_LIST _tpstream_san_flags)
    target_compile_options(tpstream_sanitizers INTERFACE
                           -fno-sanitize-recover=undefined)
    target_link_options(tpstream_sanitizers INTERFACE
                        -fno-sanitize-recover=undefined)
  endif()

  message(STATUS "tpstream: sanitizers enabled: ${TPSTREAM_SANITIZE}")
endif()
