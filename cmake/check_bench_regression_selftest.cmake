# Self-test for cmake/check_bench_regression.cmake, run as a ctest entry
# (tests/CMakeLists.txt). The gate guards every committed perf baseline,
# so its own number parsing and threshold arithmetic are pinned here with
# crafted documents:
#
#   * a scientific-notation baseline ("1.5e3") must parse as 1500, not
#     1000 — the historical to_micro bug dropped the mantissa fraction,
#     silently loosening any gate fed such a baseline
#   * a sub-milli baseline (0.0005 evt/s) must still gate — the
#     historical "/ 1000 * 100" integer form truncated both sides to
#     zero, making the comparison vacuously pass
#   * a zero baseline p99 must skip the latency gate (no divide, no
#     spurious failure) and a zero bytes baseline must still admit the
#     absolute slack
#   * restore_verified = 0 must fail on its own
#   * an unchanged document must pass
#   * the compiled-v2 ablation floor must switch on the fresh document's
#     simd_level: 4x when the batch run dispatched SIMD kernels, 2x on
#     scalar-fallback machines
#   * the durability invariants (replay/restore verified flags, the
#     sync-policy fsync accounting, the delta-vs-full byte ratio) must
#     each gate from the fresh document alone
#
# Usage:
#   cmake -DGATE_SCRIPT=<check_bench_regression.cmake> -DWORK_DIR=<dir> \
#         -P cmake/check_bench_regression_selftest.cmake
cmake_minimum_required(VERSION 3.19)

if(NOT GATE_SCRIPT OR NOT WORK_DIR)
  message(FATAL_ERROR "pass -DGATE_SCRIPT=<gate.cmake> -DWORK_DIR=<dir>")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# Writes a single-run tpstream-bench-checkpoint-v1 document.
function(write_doc path eps bpc rv p99)
  file(WRITE "${path}" "{
  \"schema\": \"tpstream-bench-checkpoint-v1\",
  \"runs\": {
    \"operator.steady\": {
      \"events\": 1000,
      \"matches\": 10,
      \"checkpoints\": 4,
      \"events_per_sec\": ${eps},
      \"bytes_per_checkpoint\": ${bpc},
      \"restore_verified\": ${rv},
      \"pause_ns\": {
        \"p50\": 1,
        \"p95\": ${p99},
        \"p99\": ${p99},
        \"max\": ${p99}
      }
    }
  }
}
")
endfunction()

set(selftest_failures 0)

# Runs the gate on (current, baseline) and asserts the verdict.
function(run_case case_name current baseline expect)
  execute_process(
    COMMAND "${CMAKE_COMMAND}"
            -DCURRENT=${current} -DBASELINE=${baseline}
            -P "${GATE_SCRIPT}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect STREQUAL "pass" AND NOT rc EQUAL 0)
    message(SEND_ERROR
            "${case_name}: expected the gate to pass but it failed "
            "(rc=${rc}):\n${err}")
    math(EXPR selftest_failures "${selftest_failures} + 1")
    set(selftest_failures ${selftest_failures} PARENT_SCOPE)
  elseif(expect STREQUAL "fail" AND rc EQUAL 0)
    message(SEND_ERROR
            "${case_name}: expected the gate to fail but it passed:\n${out}")
    math(EXPR selftest_failures "${selftest_failures} + 1")
    set(selftest_failures ${selftest_failures} PARENT_SCOPE)
  else()
    message(STATUS "${case_name}: OK (${expect})")
  endif()
endfunction()

# Case 1: unchanged document passes.
write_doc("${WORK_DIR}/base.json" 100000.0 630.2 1 5000)
run_case("unchanged-passes" "${WORK_DIR}/base.json" "${WORK_DIR}/base.json"
         pass)

# Case 2: scientific-notation baseline keeps its mantissa fraction.
# Baseline 1.5e3 = 1500 evt/s; current 800 is below the -30% floor
# (1050). The historical parser read 1000, putting the floor at 700 and
# letting the regression through.
write_doc("${WORK_DIR}/sci_base.json" 1.5e3 630.0 1 5000)
write_doc("${WORK_DIR}/sci_cur.json" 800.0 630.0 1 5000)
run_case("scinot-mantissa-gates" "${WORK_DIR}/sci_cur.json"
         "${WORK_DIR}/sci_base.json" fail)
# ...while 1200 evt/s (above the 1050 floor) passes.
write_doc("${WORK_DIR}/sci_ok.json" 1200.0 630.0 1 5000)
run_case("scinot-within-floor" "${WORK_DIR}/sci_ok.json"
         "${WORK_DIR}/sci_base.json" pass)

# Case 3: near-zero baselines still gate. 0.0001 evt/s against a 0.0005
# baseline is a 5x regression; the historical integer pre-division
# truncated both sides to zero and compared 0 >= 0.
write_doc("${WORK_DIR}/tiny_base.json" 0.0005 630.0 1 5000)
write_doc("${WORK_DIR}/tiny_cur.json" 0.0001 630.0 1 5000)
run_case("near-zero-baseline-gates" "${WORK_DIR}/tiny_cur.json"
         "${WORK_DIR}/tiny_base.json" fail)

# Case 4: a zero baseline p99 skips the pause gate instead of failing or
# dividing by zero, whatever the current p99 is.
write_doc("${WORK_DIR}/zero_p99_base.json" 100000.0 630.0 1 0)
write_doc("${WORK_DIR}/zero_p99_cur.json" 100000.0 630.0 1 999999)
run_case("zero-baseline-p99-skips" "${WORK_DIR}/zero_p99_cur.json"
         "${WORK_DIR}/zero_p99_base.json" pass)

# Case 5: a zero bytes baseline admits growth within the absolute slack
# (4096 bytes) — and fails beyond it.
write_doc("${WORK_DIR}/zero_bpc_base.json" 100000.0 0 1 5000)
write_doc("${WORK_DIR}/zero_bpc_ok.json" 100000.0 4000.0 1 5000)
run_case("zero-bytes-baseline-slack" "${WORK_DIR}/zero_bpc_ok.json"
         "${WORK_DIR}/zero_bpc_base.json" pass)
write_doc("${WORK_DIR}/zero_bpc_bad.json" 100000.0 5000.0 1 5000)
run_case("zero-bytes-baseline-ceiling" "${WORK_DIR}/zero_bpc_bad.json"
         "${WORK_DIR}/zero_bpc_base.json" fail)

# Case 6: an unverified restore fails on its own, all else equal.
write_doc("${WORK_DIR}/unverified.json" 100000.0 630.2 0 5000)
run_case("unverified-restore-fails" "${WORK_DIR}/unverified.json"
         "${WORK_DIR}/base.json" fail)

# Case 7: checkpoint pause p99 regression beyond the 5x factor fails.
write_doc("${WORK_DIR}/slow_p99.json" 100000.0 630.2 1 26000)
run_case("pause-p99-gates" "${WORK_DIR}/slow_p99.json"
         "${WORK_DIR}/base.json" fail)

# Writes a four-run tpstream-bench-compiled-v2 document where the batch
# mode runs at `batch_eps` with SIMD tier `simd` over a 1000000 evt/s
# interpreter.
function(write_compiled_doc path batch_eps simd)
  set(runs "")
  foreach(spec
          "deriver.interpreter;1000000.0;off"
          "deriver.bytecode;1500000.0;off"
          "deriver.bytecode_batch;${batch_eps};${simd}"
          "deriver.bytecode_batch_scalar;2500000.0;off")
    list(GET spec 0 rname)
    list(GET spec 1 reps)
    list(GET spec 2 rsimd)
    if(NOT runs STREQUAL "")
      string(APPEND runs ",\n")
    endif()
    string(APPEND runs "    \"${rname}\": {
      \"events\": 1000,
      \"definitions\": 16,
      \"compiled_programs\": 15,
      \"simd_level\": \"${rsimd}\",
      \"elapsed_s\": 1.0,
      \"events_per_sec\": ${reps},
      \"situations\": 42,
      \"speedup_vs_interpreter\": 1.0
    }")
  endforeach()
  file(WRITE "${path}" "{
  \"schema\": \"tpstream-bench-compiled-v2\",
  \"cpus\": 4,
  \"runs\": {
${runs}
  }
}
")
endfunction()

# Case 8: the compiled ablation floor follows the fresh simd_level. At
# 3x the interpreter, a SIMD-dispatching run misses the raised 4x floor
# while a scalar-fallback run clears its 2x floor; at 5x the SIMD run
# passes too. The baseline carries the same rates, so the per-run
# throughput floors never interfere with the verdict under test.
write_compiled_doc("${WORK_DIR}/compiled_simd_3x.json" 3000000.0 "avx2")
run_case("compiled-simd-floor-gates" "${WORK_DIR}/compiled_simd_3x.json"
         "${WORK_DIR}/compiled_simd_3x.json" fail)
write_compiled_doc("${WORK_DIR}/compiled_scalar_3x.json" 3000000.0 "off")
run_case("compiled-scalar-floor-passes" "${WORK_DIR}/compiled_scalar_3x.json"
         "${WORK_DIR}/compiled_scalar_3x.json" pass)
write_compiled_doc("${WORK_DIR}/compiled_simd_5x.json" 5000000.0 "avx2")
run_case("compiled-simd-floor-passes" "${WORK_DIR}/compiled_simd_5x.json"
         "${WORK_DIR}/compiled_simd_5x.json" pass)

# Writes a four-run tpstream-bench-durability-v1 document: two append
# runs (3125 batches each, fsync counts as given), a recovery run whose
# replay_verified flag is `rv`, and an incremental run with a 100000-byte
# mean full snapshot and `bpd`-byte mean deltas.
function(write_durability_doc path er_fsyncs e64_fsyncs rv bpd)
  file(WRITE "${path}" "{
  \"schema\": \"tpstream-bench-durability-v1\",
  \"runs\": {
    \"append.every_record\": {
      \"events\": 200000,
      \"events_per_sec\": 1000000.0,
      \"batches\": 3125,
      \"fsyncs\": ${er_fsyncs},
      \"appended_bytes\": 9000000,
      \"replay_verified\": 1
    },
    \"append.every_64k\": {
      \"events\": 200000,
      \"events_per_sec\": 2000000.0,
      \"batches\": 3125,
      \"fsyncs\": ${e64_fsyncs},
      \"appended_bytes\": 9000000,
      \"replay_verified\": 1
    },
    \"recovery.n10000\": {
      \"events\": 10000,
      \"events_per_sec\": 3000000.0,
      \"recovery_ms\": 3.0,
      \"replayed_events\": 9000,
      \"replay_verified\": ${rv}
    },
    \"incremental.k8\": {
      \"events\": 200000,
      \"events_per_sec\": 500000.0,
      \"checkpoints\": 40,
      \"full_checkpoints\": 5,
      \"delta_checkpoints\": 35,
      \"bytes_per_full\": 100000.0,
      \"bytes_per_delta\": ${bpd},
      \"restore_verified\": 1
    }
  }
}
")
endfunction()

# Case 9: the durability invariants. An unchanged healthy document
# passes; an unverified replay fails on its own; kEveryRecord reporting
# fewer barriers than records fails; kEveryBytes degenerating to
# per-record barriers fails; deltas ballooning past half a full
# snapshot fail the incremental invariant.
write_durability_doc("${WORK_DIR}/dur_base.json" 3126 130 1 8000.0)
run_case("durability-unchanged-passes" "${WORK_DIR}/dur_base.json"
         "${WORK_DIR}/dur_base.json" pass)
write_durability_doc("${WORK_DIR}/dur_unverified.json" 3126 130 0 8000.0)
run_case("durability-unverified-replay-fails" "${WORK_DIR}/dur_unverified.json"
         "${WORK_DIR}/dur_base.json" fail)
write_durability_doc("${WORK_DIR}/dur_lost_barrier.json" 3124 130 1 8000.0)
run_case("durability-every-record-barrier-fails"
         "${WORK_DIR}/dur_lost_barrier.json" "${WORK_DIR}/dur_base.json" fail)
write_durability_doc("${WORK_DIR}/dur_no_grouping.json" 3126 3125 1 8000.0)
run_case("durability-group-commit-collapse-fails"
         "${WORK_DIR}/dur_no_grouping.json" "${WORK_DIR}/dur_base.json" fail)
write_durability_doc("${WORK_DIR}/dur_fat_delta.json" 3126 130 1 60000.0)
run_case("durability-delta-ratio-fails" "${WORK_DIR}/dur_fat_delta.json"
         "${WORK_DIR}/dur_base.json" fail)

if(selftest_failures GREATER 0)
  message(FATAL_ERROR
          "${selftest_failures} self-test case(s) failed")
endif()
message(STATUS "check_bench_regression selftest: all cases passed")
