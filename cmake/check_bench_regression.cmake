# Compares a fresh benchmark JSON document against a committed baseline.
# Seven schemas are understood, dispatched on the document's "schema" key:
#
#   tpstream-bench-ingest-v1     (bench/ingest_common.h -> BENCH_ingest.json)
#   tpstream-bench-parallel-v1   (bench_parallel_scaling -> BENCH_parallel.json)
#   tpstream-bench-overload-v1   (bench_overload -> BENCH_overload.json)
#   tpstream-bench-multiquery-v1 (bench_multiquery -> BENCH_multiquery.json)
#   tpstream-bench-compiled-v2   (bench_compiled -> BENCH_compiled.json)
#   tpstream-bench-checkpoint-v1 (bench_checkpoint -> BENCH_checkpoint.json)
#   tpstream-bench-durability-v1 (bench_durability -> BENCH_durability.json)
#
# Usage:
#   cmake -DCURRENT=out.json -DBASELINE=BENCH_ingest.json \
#         [-DTHROUGHPUT_TOLERANCE_PCT=30] [-DALLOC_TOLERANCE_MICRO=500000] \
#         [-DP99_FACTOR_PCT=500] [-DRING_FULL_FACTOR_PCT=500] \
#         [-DRING_FULL_SLACK=1000] [-DSCALING_FLOOR_2W_PCT=130] \
#         [-DSCALING_FLOOR_4W_PCT=250] [-DSUMMARY_FILE=summary.md] \
#         -P cmake/check_bench_regression.cmake
#
# Ingest checks (per run; every CURRENT run needs a same-named baseline):
#   * events_per_sec        >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
#   * allocations_per_event <= baseline + ALLOC_TOLERANCE_MICRO * 1e-6
#   * push_ns.p99           <= baseline * P99_FACTOR_PCT%
#
# Parallel checks (per run):
#   * events_per_sec            >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
#   * producer_allocs_per_event <= baseline + ALLOC_TOLERANCE_MICRO * 1e-6
#   * push_ns.p99               <= baseline * P99_FACTOR_PCT%
#   * ring_full <= baseline * RING_FULL_FACTOR_PCT% + RING_FULL_SLACK
# plus cross-run scaling floors computed from CURRENT alone, enforced on
# the match_heavy profile and only when the measuring machine actually
# has the cores (the document's "cpus" field): with cpus >= 2,
# eps(w2) >= eps(w1) * SCALING_FLOOR_2W_PCT%; with cpus >= 4,
# eps(w4) >= eps(w1) * SCALING_FLOOR_4W_PCT%. The match_light profile is
# producer-bound (single-threaded routing at ingest speed) and carries no
# scaling floor.
#
# Overload checks (runs: block / drop_newest / drop_oldest at 2x the
# calibrated capacity — the Degradation contract of docs/architecture.md):
#   * events_per_sec >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
#   * push_ns.p99    <= baseline * P99_FACTOR_PCT%   (drop runs only:
#     kBlock's push latency is unbounded by design, so it carries no p99
#     gate; for the drop policies the bound is the shed-spin budget)
# plus absolute invariants evaluated on CURRENT alone:
#   * block sheds nothing and quarantines nothing (lossless by contract)
#   * every drop run's quarantined count equals its shed_batches (each
#     shed batch reaches the dead-letter sink exactly once)
#   * drop_oldest actually sheds (shed_events > 0) — at 2x offered load a
#     zero here means the bench no longer overloads the operator and the
#     other numbers are vacuous. (kDropNewest may legitimately shed
#     nothing when the ring clears within its spin budget, so only its
#     accounting — not a shed floor — is enforced.)
#
# Multiquery checks (runs: nN.{identical,distinct}.{shared,unshared}):
#   * events_per_sec >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
# plus the headline sharing invariant, evaluated on CURRENT alone: at
# N = 10000 identical queries the shared engine must sustain
#   eps(n10000.identical.shared) >=
#       eps(n10000.identical.unshared) * MULTIQUERY_SPEEDUP_FLOOR_PCT%
# (default 500% = 5x; the unshared side may be extrapolated from N = 100,
# which the bench document marks with "extrapolated": true).
#
# Compiled checks (runs: deriver.{interpreter,bytecode,bytecode_batch,
# bytecode_batch_scalar}; v2 adds a per-run "simd_level" and a top-level
# "cpus"):
#   * events_per_sec >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
# plus the headline ablation invariant, evaluated on CURRENT alone: the
# columnar bytecode path must hold its advantage over the interpreter,
#   eps(deriver.bytecode_batch) >=
#       eps(deriver.interpreter) * <floor>%
# where <floor> is COMPILED_SIMD_SPEEDUP_FLOOR_PCT (default 400% = 4x)
# when the fresh batch run reports an active SIMD tier (simd_level other
# than "off"), and COMPILED_SPEEDUP_FLOOR_PCT (default 200% = 2x) on
# scalar-fallback machines — the raised floor only binds where the
# kernels actually dispatched. The bench itself aborts if any mode
# derives a different situation stream, so the gate only reasons about
# speed.
#
# Checkpoint checks (runs: operator.steady / partitioned.k64 — periodic
# checkpoints on a random-walk stream, bench_checkpoint):
#   * events_per_sec      >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
#   * pause_ns.p99        <= baseline * CHECKPOINT_P99_FACTOR_PCT%
#     (skipped when the baseline p99 is zero — a sub-ns-resolution pause
#     carries no signal, and a zero baseline must not divide or gate)
#   * bytes_per_checkpoint <= baseline * CHECKPOINT_BYTES_FACTOR_PCT%
#                              + CHECKPOINT_BYTES_SLACK bytes
#     (the additive slack keeps a zero/near-zero baseline from forbidding
#     any growth at all)
# plus an absolute invariant on CURRENT alone: every run must report
# restore_verified = 1 (the bench's built-in restore-and-replay
# differential passed; without it the pause numbers are vacuous).
#
# Durability checks (runs: append.{every_record,every_64k,interval} —
# WAL append throughput per fsync policy; recovery.nN — one-call
# Recover() replay rate; incremental.k8 — full-vs-delta checkpoint
# bytes, bench_durability):
#   * events_per_sec >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
# plus absolute invariants evaluated on CURRENT alone:
#   * every run's replay_verified / restore_verified = 1 (the bench's
#     built-in replay or restore differential passed; without it the
#     throughput numbers are vacuous)
#   * append.every_record issues at least one barrier per appended
#     record (fsyncs >= batches — the policy's durability promise)
#   * append.every_64k actually groups commits (fsyncs * 2 <= batches; a
#     collapse back to per-record barriers silently erases the
#     latency/durability dial)
#   * incremental.k8's mean delta bytes stay under
#     DURABILITY_DELTA_RATIO_PCT% (default 50%) of its mean
#     full-snapshot bytes — the headline incremental-checkpoint
#     invariant; a dirty-set tracking regression shows up as deltas
#     ballooning to full size
#
# The thresholds are deliberately generous: shared CI machines are noisy,
# and the gate is meant to catch regressions (an allocation re-introduced
# on the hot path, a 2x slowdown, scaling collapsing back to the
# single-in-flight hand-off), not variance. All arithmetic is exact
# 64-bit integer math on micro-units, since math(EXPR) has no floating
# point. Ratio gates multiply the micro-unit values by percentages
# directly (no pre-division): events/sec micro-units stay below ~1e13,
# so even * 500 keeps ~3 decimal orders of headroom under the int64
# ceiling, while the old "/ 1000 * 100" form silently truncated any
# field below 1000 micro-units (1e-3 in natural units) to zero.
#
# This script is itself under test: cmake/check_bench_regression_selftest
# .cmake (a ctest entry) feeds it crafted documents — scientific-notation
# baselines, zero baselines, regressed and healthy runs — and asserts the
# pass/fail verdicts.
#
# When SUMMARY_FILE is set, a fresh-vs-baseline markdown delta table is
# appended to it (CI passes $GITHUB_STEP_SUMMARY).
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT CURRENT OR NOT BASELINE)
  message(FATAL_ERROR "pass -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>")
endif()
if(NOT DEFINED THROUGHPUT_TOLERANCE_PCT)
  set(THROUGHPUT_TOLERANCE_PCT 30)
endif()
if(NOT DEFINED ALLOC_TOLERANCE_MICRO)
  set(ALLOC_TOLERANCE_MICRO 500000)  # 0.5 allocations/event
endif()
if(NOT DEFINED P99_FACTOR_PCT)
  set(P99_FACTOR_PCT 500)  # 5x
endif()
if(NOT DEFINED RING_FULL_FACTOR_PCT)
  set(RING_FULL_FACTOR_PCT 500)  # 5x
endif()
if(NOT DEFINED RING_FULL_SLACK)
  set(RING_FULL_SLACK 1000)
endif()
if(NOT DEFINED SCALING_FLOOR_2W_PCT)
  set(SCALING_FLOOR_2W_PCT 130)  # speedup(w2) >= 1.3x
endif()
if(NOT DEFINED SCALING_FLOOR_4W_PCT)
  set(SCALING_FLOOR_4W_PCT 250)  # speedup(w4) >= 2.5x
endif()
if(NOT DEFINED MULTIQUERY_SPEEDUP_FLOOR_PCT)
  set(MULTIQUERY_SPEEDUP_FLOOR_PCT 500)  # shared >= 5x unshared at N=10000
endif()
if(NOT DEFINED COMPILED_SPEEDUP_FLOOR_PCT)
  set(COMPILED_SPEEDUP_FLOOR_PCT 200)  # batched bytecode >= 2x interpreter
endif()
if(NOT DEFINED COMPILED_SIMD_SPEEDUP_FLOOR_PCT)
  set(COMPILED_SIMD_SPEEDUP_FLOOR_PCT 400)  # >= 4x when SIMD dispatched
endif()
if(NOT DEFINED CHECKPOINT_P99_FACTOR_PCT)
  set(CHECKPOINT_P99_FACTOR_PCT 500)  # pause p99 <= 5x baseline
endif()
if(NOT DEFINED CHECKPOINT_BYTES_FACTOR_PCT)
  set(CHECKPOINT_BYTES_FACTOR_PCT 200)  # bytes/checkpoint <= 2x baseline
endif()
if(NOT DEFINED CHECKPOINT_BYTES_SLACK)
  set(CHECKPOINT_BYTES_SLACK 4096)  # + 4 KiB absolute slack
endif()
if(NOT DEFINED DURABILITY_DELTA_RATIO_PCT)
  set(DURABILITY_DELTA_RATIO_PCT 50)  # delta bytes <= 50% of full bytes
endif()

file(READ "${CURRENT}" current_doc)
file(READ "${BASELINE}" baseline_doc)

string(JSON schema ERROR_VARIABLE err GET "${current_doc}" schema)
if(err OR (NOT schema STREQUAL "tpstream-bench-ingest-v1" AND
           NOT schema STREQUAL "tpstream-bench-parallel-v1" AND
           NOT schema STREQUAL "tpstream-bench-overload-v1" AND
           NOT schema STREQUAL "tpstream-bench-multiquery-v1" AND
           NOT schema STREQUAL "tpstream-bench-compiled-v2" AND
           NOT schema STREQUAL "tpstream-bench-checkpoint-v1" AND
           NOT schema STREQUAL "tpstream-bench-durability-v1"))
  message(FATAL_ERROR "${CURRENT}: bad or missing schema ('${schema}') ${err}")
endif()
string(JSON base_schema ERROR_VARIABLE err GET "${baseline_doc}" schema)
if(err OR NOT base_schema STREQUAL schema)
  message(FATAL_ERROR
          "${BASELINE}: schema '${base_schema}' does not match ${CURRENT}'s "
          "'${schema}' ${err}")
endif()

# Parses a non-negative decimal number ("123", "123.45", "4e-06") into
# integer micro-units (x 1e6, truncated).
function(to_micro val out)
  if(val MATCHES "^([0-9]+)(\\.([0-9]+))?[eE]([+-]?[0-9]+)$")
    # Normalize the mantissa to an integer by shifting its fractional
    # digits in and deducting their count from the exponent — dropping
    # the fraction (the old behaviour) mis-parsed "1.5e3" as 1000, which
    # silently loosened every gate fed such a baseline.
    set(int_part ${CMAKE_MATCH_1})
    set(frac ${CMAKE_MATCH_3})  # regex ops below clobber CMAKE_MATCH_*
    set(exp ${CMAKE_MATCH_4})
    string(LENGTH "${frac}" frac_len)
    set(digits "${int_part}${frac}")
    # Strip leading zeros so math(EXPR) does not parse octal.
    string(REGEX REPLACE "^0+" "" digits "${digits}")
    if(digits STREQUAL "")
      set(digits 0)
    endif()
    math(EXPR exp "(${exp}) - ${frac_len} + 6")  # +6: micro-units
    if(exp LESS 0)
      math(EXPR neg "0 - (${exp})")
      if(neg GREATER 18)  # below int64 resolution: truncates to zero
        set(${out} 0 PARENT_SCOPE)
        return()
      endif()
      set(result ${digits})
      foreach(i RANGE 1 ${neg})
        math(EXPR result "${result} / 10")
      endforeach()
    else()
      if(exp GREATER 12)
        message(FATAL_ERROR
                "number '${val}' too large for micro-unit int64 math")
      endif()
      set(result ${digits})
      if(exp GREATER 0)
        foreach(i RANGE 1 ${exp})
          math(EXPR result "${result} * 10")
        endforeach()
      endif()
    endif()
    set(${out} ${result} PARENT_SCOPE)
  elseif(val MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part ${CMAKE_MATCH_1})  # regex ops below clobber CMAKE_MATCH_*
    string(SUBSTRING "${CMAKE_MATCH_2}000000" 0 6 frac)
    # Strip leading zeros so math(EXPR) does not parse octal.
    string(REGEX REPLACE "^0+" "" frac "${frac}")
    if(frac STREQUAL "")
      set(frac 0)
    endif()
    math(EXPR result "${int_part} * 1000000 + ${frac}")
    set(${out} ${result} PARENT_SCOPE)
  elseif(val MATCHES "^[0-9]+$")
    math(EXPR result "${val} * 1000000")
    set(${out} ${result} PARENT_SCOPE)
  else()
    message(FATAL_ERROR "cannot parse number '${val}'")
  endif()
endfunction()

# Percentage delta (integer, rounded toward zero) of cur vs base
# micro-unit values; "n/a" when the baseline is zero.
function(delta_pct cur_u base_u out)
  if(base_u EQUAL 0)
    set(${out} "n/a" PARENT_SCOPE)
    return()
  endif()
  math(EXPR pct "(${cur_u} - ${base_u}) * 100 / ${base_u}")
  if(pct GREATER_EQUAL 0)
    set(${out} "+${pct}%" PARENT_SCOPE)
  else()
    set(${out} "${pct}%" PARENT_SCOPE)
  endif()
endfunction()

function(summary_append line)
  if(SUMMARY_FILE)
    file(APPEND "${SUMMARY_FILE}" "${line}\n")
  endif()
endfunction()

# string(JSON) re-serializes numbers at full double precision
# (1.0637000000000001); trim to two decimals for the summary table.
function(pretty_num val out)
  if(val MATCHES "^([0-9]+)\\.([0-9][0-9]?)")
    set(${out} "${CMAKE_MATCH_1}.${CMAKE_MATCH_2}" PARENT_SCOPE)
  else()
    set(${out} "${val}" PARENT_SCOPE)
  endif()
endfunction()

string(JSON num_runs LENGTH "${current_doc}" runs)
if(num_runs EQUAL 0)
  message(FATAL_ERROR "${CURRENT}: no runs")
endif()

get_filename_component(current_name "${CURRENT}" NAME)
get_filename_component(baseline_name "${BASELINE}" NAME)
summary_append("### Perf smoke: `${current_name}` vs `${baseline_name}` (${schema})")
summary_append("")
if(schema STREQUAL "tpstream-bench-ingest-v1")
  summary_append("| run | evt/s | baseline | Δ | alloc/evt | p99 ns | baseline p99 |")
  summary_append("|---|---|---|---|---|---|---|")
elseif(schema STREQUAL "tpstream-bench-overload-v1")
  summary_append("| run | evt/s | baseline | Δ | shed_events | quarantined | ring_full | p99 ns |")
  summary_append("|---|---|---|---|---|---|---|---|")
elseif(schema STREQUAL "tpstream-bench-multiquery-v1")
  summary_append("| run | evt/s | baseline | Δ | matches/query | distinct defs |")
  summary_append("|---|---|---|---|---|---|")
elseif(schema STREQUAL "tpstream-bench-compiled-v2")
  summary_append("| run | evt/s | baseline | Δ | situations | programs | simd | speedup |")
  summary_append("|---|---|---|---|---|---|---|---|")
elseif(schema STREQUAL "tpstream-bench-checkpoint-v1")
  summary_append("| run | evt/s | baseline | Δ | bytes/ckpt | baseline | pause p99 ns | baseline p99 | verified |")
  summary_append("|---|---|---|---|---|---|---|---|---|")
elseif(schema STREQUAL "tpstream-bench-durability-v1")
  summary_append("| run | evt/s | baseline | Δ | fsyncs | bytes/full | bytes/delta | verified |")
  summary_append("|---|---|---|---|---|---|---|---|")
else()
  summary_append("| run | evt/s | baseline | Δ | speedup | ring_full | alloc/evt | p99 ns |")
  summary_append("|---|---|---|---|---|---|---|---|")
endif()

set(failures 0)
math(EXPR last "${num_runs} - 1")
foreach(i RANGE 0 ${last})
  set(failures_before ${failures})
  string(JSON name MEMBER "${current_doc}" runs ${i})
  string(JSON base_run ERROR_VARIABLE err GET "${baseline_doc}" runs "${name}")
  if(err)
    message(FATAL_ERROR
            "run '${name}' missing from baseline ${BASELINE} — regenerate it "
            "(see EXPERIMENTS.md, 'Perf baselines'): ${err}")
  endif()

  # Throughput floor — common to both schemas.
  string(JSON cur_eps GET "${current_doc}" runs "${name}" events_per_sec)
  string(JSON base_eps GET "${baseline_doc}" runs "${name}" events_per_sec)
  to_micro("${cur_eps}" cur_eps_u)
  to_micro("${base_eps}" base_eps_u)
  # Multiply micro-units by percentages directly: the former
  # "/ 1000 * 100" form truncated any rate below 1000 micro-units to
  # zero, which made a near-zero baseline unfailable (0 >= 0).
  math(EXPR lhs "${cur_eps_u} * 100")
  math(EXPR rhs "${base_eps_u} * (100 - ${THROUGHPUT_TOLERANCE_PCT})")
  if(lhs LESS rhs)
    message(SEND_ERROR
            "${name}: throughput regressed — ${cur_eps} evt/s vs baseline "
            "${base_eps} (allowed: -${THROUGHPUT_TOLERANCE_PCT}%)")
    math(EXPR failures "${failures} + 1")
  endif()
  delta_pct(${cur_eps_u} ${base_eps_u} eps_delta)

  # Allocation ceiling — field name differs per schema; the overload
  # schema has no allocation counter (its producer thread blocks or
  # sheds, it never allocates) and the multiquery/compiled schemas
  # measure bulk throughput only, so the check does not apply to them.
  if(schema STREQUAL "tpstream-bench-overload-v1" OR
     schema STREQUAL "tpstream-bench-multiquery-v1" OR
     schema STREQUAL "tpstream-bench-compiled-v2" OR
     schema STREQUAL "tpstream-bench-checkpoint-v1" OR
     schema STREQUAL "tpstream-bench-durability-v1")
    set(cur_ape "n/a")
    set(base_ape "n/a")
  else()
    if(schema STREQUAL "tpstream-bench-ingest-v1")
      set(alloc_field allocations_per_event)
    else()
      set(alloc_field producer_allocs_per_event)
    endif()
    string(JSON cur_ape GET "${current_doc}" runs "${name}" ${alloc_field})
    string(JSON base_ape GET "${baseline_doc}" runs "${name}" ${alloc_field})
    to_micro("${cur_ape}" cur_ape_u)
    to_micro("${base_ape}" base_ape_u)
    math(EXPR ape_limit "${base_ape_u} + ${ALLOC_TOLERANCE_MICRO}")
    if(cur_ape_u GREATER ape_limit)
      message(SEND_ERROR
              "${name}: ${alloc_field} regressed — ${cur_ape} vs baseline "
              "${base_ape} (+${ALLOC_TOLERANCE_MICRO} micro-allocs allowed)")
      math(EXPR failures "${failures} + 1")
    endif()
  endif()

  # Push-latency p99 bound. The multiquery and compiled schemas record no
  # latency distribution (bulk-throughput runs); for the overload schema
  # the bound applies to the drop runs only: kBlock converts excess
  # offered load into push latency by design, so its p99 tracks the
  # overload factor, not a regression.
  if(schema STREQUAL "tpstream-bench-multiquery-v1" OR
     schema STREQUAL "tpstream-bench-compiled-v2" OR
     schema STREQUAL "tpstream-bench-durability-v1")
    # The durability schema likewise records no latency distribution
    # (append throughput and recovery wall time only).
    set(cur_p99 "n/a")
    set(base_p99 0)
  elseif(schema STREQUAL "tpstream-bench-checkpoint-v1")
    # The checkpoint schema's latency distribution is the checkpoint
    # pause, not the push latency, and carries its own (stricter-purpose)
    # factor.
    string(JSON cur_p99 GET "${current_doc}" runs "${name}" pause_ns p99)
    string(JSON base_p99 GET "${baseline_doc}" runs "${name}" pause_ns p99)
  else()
    string(JSON cur_p99 GET "${current_doc}" runs "${name}" push_ns p99)
    string(JSON base_p99 GET "${baseline_doc}" runs "${name}" push_ns p99)
  endif()
  if(schema STREQUAL "tpstream-bench-checkpoint-v1")
    set(p99_factor ${CHECKPOINT_P99_FACTOR_PCT})
    set(p99_what "checkpoint pause")
  else()
    set(p99_factor ${P99_FACTOR_PCT})
    set(p99_what "push")
  endif()
  if(NOT schema STREQUAL "tpstream-bench-multiquery-v1" AND
     NOT schema STREQUAL "tpstream-bench-compiled-v2" AND
     NOT schema STREQUAL "tpstream-bench-durability-v1" AND
     NOT (schema STREQUAL "tpstream-bench-overload-v1" AND
          name STREQUAL "block"))
    # The base_p99 > 0 guard doubles as zero-safety: a zero baseline
    # (sub-resolution pause) gates nothing rather than gating everything.
    math(EXPR p99_limit "${base_p99} * ${p99_factor} / 100")
    if(base_p99 GREATER 0 AND cur_p99 GREATER p99_limit)
      message(SEND_ERROR
              "${name}: ${p99_what} p99 regressed — ${cur_p99} ns vs "
              "baseline ${base_p99} ns (allowed: ${p99_factor}%)")
      math(EXPR failures "${failures} + 1")
    endif()
  endif()

  pretty_num("${cur_eps}" cur_eps_fmt)
  pretty_num("${base_eps}" base_eps_fmt)
  pretty_num("${cur_ape}" cur_ape_fmt)
  if(schema STREQUAL "tpstream-bench-ingest-v1")
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_ape_fmt} | ${cur_p99} | ${base_p99} |")
  elseif(schema STREQUAL "tpstream-bench-multiquery-v1")
    string(JSON cur_mpq GET "${current_doc}" runs "${name}" matches_per_query)
    string(JSON cur_defs GET "${current_doc}" runs "${name}"
           distinct_definitions)
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_mpq} | ${cur_defs} |")
  elseif(schema STREQUAL "tpstream-bench-compiled-v2")
    string(JSON cur_sits GET "${current_doc}" runs "${name}" situations)
    string(JSON cur_progs GET "${current_doc}" runs "${name}"
           compiled_programs)
    string(JSON cur_simd GET "${current_doc}" runs "${name}" simd_level)
    string(JSON cur_spd GET "${current_doc}" runs "${name}"
           speedup_vs_interpreter)
    pretty_num("${cur_spd}" cur_spd_fmt)
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_sits} | ${cur_progs} | ${cur_simd} | ${cur_spd_fmt}x |")
  elseif(schema STREQUAL "tpstream-bench-overload-v1")
    # Absolute invariants of the Degradation contract, from CURRENT alone.
    string(JSON cur_shed GET "${current_doc}" runs "${name}" shed_events)
    string(JSON cur_shed_b GET "${current_doc}" runs "${name}" shed_batches)
    string(JSON cur_quar GET "${current_doc}" runs "${name}" quarantined)
    string(JSON cur_rf GET "${current_doc}" runs "${name}" ring_full)
    if(name STREQUAL "block")
      if(NOT cur_shed EQUAL 0 OR NOT cur_quar EQUAL 0)
        message(SEND_ERROR
                "block: kBlock must be lossless but shed ${cur_shed} "
                "event(s) / quarantined ${cur_quar} item(s)")
        math(EXPR failures "${failures} + 1")
      endif()
    else()
      if(NOT cur_quar EQUAL cur_shed_b)
        message(SEND_ERROR
                "${name}: ${cur_quar} quarantined item(s) vs "
                "${cur_shed_b} shed batch(es) — every shed batch must "
                "reach the dead-letter sink exactly once")
        math(EXPR failures "${failures} + 1")
      endif()
    endif()
    if(name STREQUAL "drop_oldest" AND cur_shed EQUAL 0)
      message(SEND_ERROR
              "drop_oldest: shed nothing at 2x offered load — the bench "
              "no longer overloads the operator, its numbers are vacuous")
      math(EXPR failures "${failures} + 1")
    endif()
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_shed} | ${cur_quar} | ${cur_rf} | ${cur_p99} |")
  elseif(schema STREQUAL "tpstream-bench-checkpoint-v1")
    # Bytes-per-checkpoint ceiling: a factor on the baseline plus an
    # absolute slack, so a tiny baseline (a near-empty operator) cannot
    # forbid all growth, and a zero baseline never divides.
    string(JSON cur_bpc GET "${current_doc}" runs "${name}"
           bytes_per_checkpoint)
    string(JSON base_bpc GET "${baseline_doc}" runs "${name}"
           bytes_per_checkpoint)
    to_micro("${cur_bpc}" cur_bpc_u)
    to_micro("${base_bpc}" base_bpc_u)
    math(EXPR bpc_limit
         "${base_bpc_u} * ${CHECKPOINT_BYTES_FACTOR_PCT} / 100 + ${CHECKPOINT_BYTES_SLACK} * 1000000")
    if(cur_bpc_u GREATER bpc_limit)
      message(SEND_ERROR
              "${name}: bytes_per_checkpoint regressed — ${cur_bpc} vs "
              "baseline ${base_bpc} (allowed: *${CHECKPOINT_BYTES_FACTOR_PCT}% "
              "+ ${CHECKPOINT_BYTES_SLACK})")
      math(EXPR failures "${failures} + 1")
    endif()
    # Absolute invariant from CURRENT alone: the bench's built-in
    # restore-and-replay differential must have passed.
    string(JSON cur_rv GET "${current_doc}" runs "${name}" restore_verified)
    if(NOT cur_rv EQUAL 1)
      message(SEND_ERROR
              "${name}: restore_verified = ${cur_rv} — the recovered run "
              "diverged from the uninterrupted run; the checkpoint numbers "
              "are vacuous")
      math(EXPR failures "${failures} + 1")
    endif()
    pretty_num("${cur_bpc}" cur_bpc_fmt)
    pretty_num("${base_bpc}" base_bpc_fmt)
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_bpc_fmt} | ${base_bpc_fmt} | ${cur_p99} | ${base_p99} | ${cur_rv} |")
  elseif(schema STREQUAL "tpstream-bench-durability-v1")
    # Absolute invariants of the Durability contract, from CURRENT alone.
    # Field sets differ per run family; optional fields show as "-".
    set(cur_fsyncs "-")
    set(cur_bpf "-")
    set(cur_bpd "-")
    if(name MATCHES "^incremental\\.")
      string(JSON cur_rv GET "${current_doc}" runs "${name}" restore_verified)
      if(NOT cur_rv EQUAL 1)
        message(SEND_ERROR
                "${name}: restore_verified = ${cur_rv} — the recovered "
                "engine diverged from the uninterrupted run; the "
                "checkpoint byte counts are vacuous")
        math(EXPR failures "${failures} + 1")
      endif()
      string(JSON cur_bpf GET "${current_doc}" runs "${name}" bytes_per_full)
      string(JSON cur_bpd GET "${current_doc}" runs "${name}" bytes_per_delta)
      to_micro("${cur_bpf}" cur_bpf_u)
      to_micro("${cur_bpd}" cur_bpd_u)
      math(EXPR lhs "${cur_bpd_u} * 100")
      math(EXPR rhs "${cur_bpf_u} * ${DURABILITY_DELTA_RATIO_PCT}")
      if(cur_bpf_u EQUAL 0 OR lhs GREATER rhs)
        message(SEND_ERROR
                "${name}: incremental invariant missed — mean delta "
                "${cur_bpd} bytes vs mean full ${cur_bpf} bytes (deltas "
                "must stay <= ${DURABILITY_DELTA_RATIO_PCT}% of a full "
                "snapshot)")
        math(EXPR failures "${failures} + 1")
      endif()
      pretty_num("${cur_bpf}" cur_bpf)
      pretty_num("${cur_bpd}" cur_bpd)
    else()
      string(JSON cur_rv GET "${current_doc}" runs "${name}" replay_verified)
      if(NOT cur_rv EQUAL 1)
        message(SEND_ERROR
                "${name}: replay_verified = ${cur_rv} — the replayed "
                "stream diverged from what was appended; the throughput "
                "numbers are vacuous")
        math(EXPR failures "${failures} + 1")
      endif()
    endif()
    if(name MATCHES "^append\\.")
      string(JSON cur_fsyncs GET "${current_doc}" runs "${name}" fsyncs)
      string(JSON cur_batches GET "${current_doc}" runs "${name}" batches)
      if(name STREQUAL "append.every_record" AND
         cur_fsyncs LESS cur_batches)
        message(SEND_ERROR
                "${name}: only ${cur_fsyncs} fsync(s) for ${cur_batches} "
                "appended record(s) — kEveryRecord promises a barrier "
                "per record")
        math(EXPR failures "${failures} + 1")
      endif()
      math(EXPR fsyncs_2x "${cur_fsyncs} * 2")
      if(name STREQUAL "append.every_64k" AND
         fsyncs_2x GREATER cur_batches)
        message(SEND_ERROR
                "${name}: ${cur_fsyncs} fsync(s) for ${cur_batches} "
                "appended record(s) — kEveryBytes no longer groups "
                "commits (need <= 1 barrier per 2 records)")
        math(EXPR failures "${failures} + 1")
      endif()
    endif()
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_fsyncs} | ${cur_bpf} | ${cur_bpd} | ${cur_rv} |")
  else()
    # Backpressure bound: a collapse back to single-in-flight hand-off
    # shows up as ring_full exploding relative to the baseline.
    string(JSON cur_rf GET "${current_doc}" runs "${name}" ring_full)
    string(JSON base_rf GET "${baseline_doc}" runs "${name}" ring_full)
    math(EXPR rf_limit
         "${base_rf} * ${RING_FULL_FACTOR_PCT} / 100 + ${RING_FULL_SLACK}")
    if(cur_rf GREATER rf_limit)
      message(SEND_ERROR
              "${name}: ring_full regressed — ${cur_rf} stalled submits vs "
              "baseline ${base_rf} (allowed: *${RING_FULL_FACTOR_PCT}% + "
              "${RING_FULL_SLACK})")
      math(EXPR failures "${failures} + 1")
    endif()
    string(JSON cur_speedup GET "${current_doc}" runs "${name}" speedup_vs_w1)
    pretty_num("${cur_speedup}" cur_speedup_fmt)
    summary_append("| ${name} | ${cur_eps_fmt} | ${base_eps_fmt} | ${eps_delta} | ${cur_speedup_fmt}x | ${cur_rf} | ${cur_ape_fmt} | ${cur_p99} |")
  endif()

  if(failures EQUAL failures_before)
    message(STATUS
            "${name}: ${cur_eps} evt/s (baseline ${base_eps}), "
            "${cur_ape} alloc/evt (baseline ${base_ape}), "
            "p99 ${cur_p99} ns (baseline ${base_p99}) — OK within thresholds")
  endif()
endforeach()

# Cross-run scaling floors (parallel schema, CURRENT document only):
# enforced on match_heavy, gated on the measuring machine's core count.
if(schema STREQUAL "tpstream-bench-parallel-v1")
  string(JSON cpus ERROR_VARIABLE err GET "${current_doc}" cpus)
  if(err)
    set(cpus 0)
  endif()
  string(JSON w1 ERROR_VARIABLE err1 GET "${current_doc}" runs match_heavy.w1
         events_per_sec)
  foreach(pair "2;${SCALING_FLOOR_2W_PCT}" "4;${SCALING_FLOOR_4W_PCT}")
    list(GET pair 0 nworkers)
    list(GET pair 1 floor_pct)
    if(err1 OR cpus LESS ${nworkers})
      message(STATUS
              "match_heavy.w${nworkers}: scaling floor skipped "
              "(cpus=${cpus}, need >= ${nworkers})")
      summary_append("")
      summary_append("match_heavy w${nworkers} scaling floor skipped: machine has ${cpus} core(s).")
      continue()
    endif()
    string(JSON wn ERROR_VARIABLE errn GET "${current_doc}" runs
           match_heavy.w${nworkers} events_per_sec)
    if(errn)
      continue()  # sweep did not include this worker count
    endif()
    to_micro("${w1}" w1_u)
    to_micro("${wn}" wn_u)
    math(EXPR lhs "${wn_u} * 100")
    math(EXPR rhs "${w1_u} * ${floor_pct}")
    if(lhs LESS rhs)
      message(SEND_ERROR
              "match_heavy.w${nworkers}: scaling floor missed — ${wn} evt/s "
              "vs ${w1} at 1 worker (need >= ${floor_pct}% on a "
              "${cpus}-core machine)")
      math(EXPR failures "${failures} + 1")
    else()
      message(STATUS
              "match_heavy.w${nworkers}: ${wn} evt/s vs ${w1} at 1 worker — "
              "scaling floor ${floor_pct}% met")
    endif()
  endforeach()
endif()

# Sharing floor (multiquery schema, CURRENT document only): the shared
# engine must hold its headline advantage over N independent operators.
if(schema STREQUAL "tpstream-bench-multiquery-v1")
  string(JSON shared_eps ERROR_VARIABLE err_s GET "${current_doc}" runs
         n10000.identical.shared events_per_sec)
  string(JSON unshared_eps ERROR_VARIABLE err_u GET "${current_doc}" runs
         n10000.identical.unshared events_per_sec)
  if(err_s OR err_u)
    message(FATAL_ERROR
            "multiquery document is missing the n10000.identical runs "
            "needed for the sharing floor: ${err_s} ${err_u}")
  endif()
  to_micro("${shared_eps}" shared_u)
  to_micro("${unshared_eps}" unshared_u)
  math(EXPR lhs "${shared_u} * 100")
  math(EXPR rhs "${unshared_u} * ${MULTIQUERY_SPEEDUP_FLOOR_PCT}")
  if(lhs LESS rhs)
    message(SEND_ERROR
            "n10000.identical: sharing floor missed — shared ${shared_eps} "
            "evt/s vs unshared ${unshared_eps} (need >= "
            "${MULTIQUERY_SPEEDUP_FLOOR_PCT}%)")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS
            "n10000.identical: shared ${shared_eps} evt/s vs unshared "
            "${unshared_eps} — sharing floor "
            "${MULTIQUERY_SPEEDUP_FLOOR_PCT}% met")
  endif()
endif()

# Ablation floor (compiled schema, CURRENT document only): batched
# bytecode evaluation must hold its headline advantage over the tree
# interpreter on the derivation-bound workload. The floor is raised when
# the fresh run reports an active SIMD tier — only a machine that
# actually dispatched the kernels is held to the kernel-level speedup;
# scalar-fallback machines keep the portable 2x floor.
if(schema STREQUAL "tpstream-bench-compiled-v2")
  string(JSON interp_eps ERROR_VARIABLE err_i GET "${current_doc}" runs
         deriver.interpreter events_per_sec)
  string(JSON batch_eps ERROR_VARIABLE err_b GET "${current_doc}" runs
         deriver.bytecode_batch events_per_sec)
  if(err_i OR err_b)
    message(FATAL_ERROR
            "compiled document is missing the deriver.interpreter / "
            "deriver.bytecode_batch runs needed for the ablation floor: "
            "${err_i} ${err_b}")
  endif()
  string(JSON batch_simd ERROR_VARIABLE err_simd GET "${current_doc}" runs
         deriver.bytecode_batch simd_level)
  if(err_simd)
    message(FATAL_ERROR
            "compiled document's deriver.bytecode_batch run has no "
            "simd_level (schema v2 requires it): ${err_simd}")
  endif()
  if(batch_simd STREQUAL "off")
    set(compiled_floor ${COMPILED_SPEEDUP_FLOOR_PCT})
  else()
    set(compiled_floor ${COMPILED_SIMD_SPEEDUP_FLOOR_PCT})
  endif()
  to_micro("${interp_eps}" interp_u)
  to_micro("${batch_eps}" batch_u)
  math(EXPR lhs "${batch_u} * 100")
  math(EXPR rhs "${interp_u} * ${compiled_floor}")
  if(lhs LESS rhs)
    message(SEND_ERROR
            "deriver.bytecode_batch: ablation floor missed — ${batch_eps} "
            "evt/s vs interpreter ${interp_eps} (need >= "
            "${compiled_floor}% at simd_level '${batch_simd}')")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS
            "deriver.bytecode_batch: ${batch_eps} evt/s vs interpreter "
            "${interp_eps} — ablation floor ${compiled_floor}% "
            "(simd_level '${batch_simd}') met")
  endif()
endif()

summary_append("")
if(failures GREATER 0)
  summary_append("**${failures} threshold(s) exceeded.**")
  message(FATAL_ERROR "${failures} benchmark threshold(s) exceeded")
endif()
summary_append("All runs within thresholds.")
message(STATUS "${CURRENT}: ${num_runs} run(s) within thresholds of ${BASELINE}")
