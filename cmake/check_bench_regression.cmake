# Compares a fresh "tpstream-bench-ingest-v1" document (see
# bench/ingest_common.h) against the committed BENCH_ingest.json
# baseline. Usage:
#   cmake -DCURRENT=out.json -DBASELINE=BENCH_ingest.json \
#         [-DTHROUGHPUT_TOLERANCE_PCT=30] [-DALLOC_TOLERANCE_MICRO=500000] \
#         [-DP99_FACTOR_PCT=500] -P cmake/check_bench_regression.cmake
#
# For every run present in CURRENT there must be a baseline run of the
# same name, and:
#   * events_per_sec        >= baseline * (1 - THROUGHPUT_TOLERANCE_PCT%)
#   * allocations_per_event <= baseline + ALLOC_TOLERANCE_MICRO * 1e-6
#   * push_ns.p99           <= baseline * P99_FACTOR_PCT%
# The thresholds are deliberately generous (30% throughput, 5x p99,
# +0.5 allocations/event): shared CI machines are noisy, and the gate is
# meant to catch regressions (an allocation re-introduced on the hot
# path, a 2x slowdown), not variance. All arithmetic is exact 64-bit
# integer math on micro-units, since math(EXPR) has no floating point.
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT CURRENT OR NOT BASELINE)
  message(FATAL_ERROR "pass -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>")
endif()
if(NOT DEFINED THROUGHPUT_TOLERANCE_PCT)
  set(THROUGHPUT_TOLERANCE_PCT 30)
endif()
if(NOT DEFINED ALLOC_TOLERANCE_MICRO)
  set(ALLOC_TOLERANCE_MICRO 500000)  # 0.5 allocations/event
endif()
if(NOT DEFINED P99_FACTOR_PCT)
  set(P99_FACTOR_PCT 500)  # 5x
endif()

file(READ "${CURRENT}" current_doc)
file(READ "${BASELINE}" baseline_doc)

foreach(pair "current_doc;${CURRENT}" "baseline_doc;${BASELINE}")
  list(GET pair 0 var)
  list(GET pair 1 path)
  string(JSON schema ERROR_VARIABLE err GET "${${var}}" schema)
  if(err OR NOT schema STREQUAL "tpstream-bench-ingest-v1")
    message(FATAL_ERROR "${path}: bad or missing schema ('${schema}') ${err}")
  endif()
endforeach()

# Parses a non-negative decimal number ("123", "123.45", "4e-06") into
# integer micro-units (x 1e6, truncated).
function(to_micro val out)
  if(val MATCHES "^([0-9]+)(\\.([0-9]+))?[eE]([+-]?[0-9]+)$")
    # Scientific notation only appears for tiny allocation rates; any
    # negative exponent <= -6 truncates to < 1 micro-unit.
    set(mantissa_int ${CMAKE_MATCH_1})
    set(exp ${CMAKE_MATCH_4})
    if(exp LESS -5)
      set(${out} 0 PARENT_SCOPE)
      return()
    endif()
    math(EXPR scale "1000000")
    if(exp LESS 0)
      math(EXPR neg "0 - (${exp})")
      foreach(i RANGE 1 ${neg})
        math(EXPR scale "${scale} / 10")
      endforeach()
    elseif(exp GREATER 0)
      foreach(i RANGE 1 ${exp})
        math(EXPR scale "${scale} * 10")
      endforeach()
    endif()
    math(EXPR result "${mantissa_int} * ${scale}")
    set(${out} ${result} PARENT_SCOPE)
  elseif(val MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part ${CMAKE_MATCH_1})  # regex ops below clobber CMAKE_MATCH_*
    string(SUBSTRING "${CMAKE_MATCH_2}000000" 0 6 frac)
    # Strip leading zeros so math(EXPR) does not parse octal.
    string(REGEX REPLACE "^0+" "" frac "${frac}")
    if(frac STREQUAL "")
      set(frac 0)
    endif()
    math(EXPR result "${int_part} * 1000000 + ${frac}")
    set(${out} ${result} PARENT_SCOPE)
  elseif(val MATCHES "^[0-9]+$")
    math(EXPR result "${val} * 1000000")
    set(${out} ${result} PARENT_SCOPE)
  else()
    message(FATAL_ERROR "cannot parse number '${val}'")
  endif()
endfunction()

string(JSON num_runs LENGTH "${current_doc}" runs)
if(num_runs EQUAL 0)
  message(FATAL_ERROR "${CURRENT}: no runs")
endif()

set(failures 0)
math(EXPR last "${num_runs} - 1")
foreach(i RANGE 0 ${last})
  set(failures_before ${failures})
  string(JSON name MEMBER "${current_doc}" runs ${i})
  string(JSON base_run ERROR_VARIABLE err GET "${baseline_doc}" runs "${name}")
  if(err)
    message(FATAL_ERROR
            "run '${name}' missing from baseline ${BASELINE} — regenerate it "
            "(see EXPERIMENTS.md, 'Perf baselines'): ${err}")
  endif()

  string(JSON cur_eps GET "${current_doc}" runs "${name}" events_per_sec)
  string(JSON base_eps GET "${baseline_doc}" runs "${name}" events_per_sec)
  to_micro("${cur_eps}" cur_eps_u)
  to_micro("${base_eps}" base_eps_u)
  math(EXPR lhs "${cur_eps_u} / 1000 * 100")
  math(EXPR rhs "${base_eps_u} / 1000 * (100 - ${THROUGHPUT_TOLERANCE_PCT})")
  if(lhs LESS rhs)
    message(SEND_ERROR
            "${name}: throughput regressed — ${cur_eps} evt/s vs baseline "
            "${base_eps} (allowed: -${THROUGHPUT_TOLERANCE_PCT}%)")
    math(EXPR failures "${failures} + 1")
  endif()

  string(JSON cur_ape GET "${current_doc}" runs "${name}" allocations_per_event)
  string(JSON base_ape GET "${baseline_doc}" runs "${name}" allocations_per_event)
  to_micro("${cur_ape}" cur_ape_u)
  to_micro("${base_ape}" base_ape_u)
  math(EXPR ape_limit "${base_ape_u} + ${ALLOC_TOLERANCE_MICRO}")
  if(cur_ape_u GREATER ape_limit)
    message(SEND_ERROR
            "${name}: allocations/event regressed — ${cur_ape} vs baseline "
            "${base_ape} (+${ALLOC_TOLERANCE_MICRO} micro-allocs allowed)")
    math(EXPR failures "${failures} + 1")
  endif()

  string(JSON cur_p99 GET "${current_doc}" runs "${name}" push_ns p99)
  string(JSON base_p99 GET "${baseline_doc}" runs "${name}" push_ns p99)
  math(EXPR p99_limit "${base_p99} * ${P99_FACTOR_PCT} / 100")
  if(base_p99 GREATER 0 AND cur_p99 GREATER p99_limit)
    message(SEND_ERROR
            "${name}: push p99 regressed — ${cur_p99} ns vs baseline "
            "${base_p99} ns (allowed: ${P99_FACTOR_PCT}%)")
    math(EXPR failures "${failures} + 1")
  endif()

  if(failures EQUAL failures_before)
    message(STATUS
            "${name}: ${cur_eps} evt/s (baseline ${base_eps}), "
            "${cur_ape} alloc/evt (baseline ${base_ape}), "
            "p99 ${cur_p99} ns (baseline ${base_p99}) — OK within thresholds")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} benchmark threshold(s) exceeded")
endif()
message(STATUS "${CURRENT}: ${num_runs} run(s) within thresholds of ${BASELINE}")
