// Quickstart: build a TPStream query with the fluent API, push a small
// event stream, and observe matches — including one concluded *before*
// all situations have ended (the low-latency property of Section 5.3).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/operator.h"
#include "query/builder.h"

using namespace tpstream;

int main() {
  // Events carry two sensor readings.
  Schema schema({
      Field{"temperature", ValueType::kDouble},
      Field{"pressure", ValueType::kDouble},
  });

  // Two situations: HOT (temperature above 80) and HIGH (pressure above
  // 5), related temporally: HOT must overlap HIGH. The output reports the
  // peak temperature and the average pressure of the matched phases.
  QueryBuilder qb(schema);
  qb.Define("HOT", Gt(FieldRef(schema, "temperature").value(), Literal(80.0)))
      .Define("HIGH", Gt(FieldRef(schema, "pressure").value(), Literal(5.0)))
      .Relate("HOT", Relation::kOverlaps, "HIGH")
      .Within(3600)
      .Return("peak_temp", "HOT", AggKind::kMax, "temperature")
      .Return("avg_pressure", "HIGH", AggKind::kAvg, "pressure");
  Result<QuerySpec> spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  TPStreamOperator op(spec.value(), {}, [](const Event& out) {
    std::printf("t=%lld  MATCH  peak_temp=%.1f  avg_pressure=%.2f\n",
                static_cast<long long>(out.t),
                out.payload[0].ToDouble(), out.payload[1].ToDouble());
  });

  // temperature exceeds 80 during [2, 6); pressure exceeds 5 during
  // [4, 9). HOT overlaps HIGH, so the match is certain at t = 6 — when
  // HOT ends while HIGH still holds — three ticks before HIGH ends.
  struct Reading {
    double temperature;
    double pressure;
  };
  const Reading readings[] = {
      {70, 1}, {85, 1}, {88, 2}, {91, 6}, {86, 7},
      {75, 8}, {74, 9}, {73, 7}, {72, 3}, {71, 2},
  };
  TimePoint t = 1;
  for (const Reading& r : readings) {
    std::printf("t=%lld  temperature=%.0f pressure=%.0f\n",
                static_cast<long long>(t), r.temperature, r.pressure);
    op.Push(Event({Value(r.temperature), Value(r.pressure)}, t));
    ++t;
  }

  std::printf("events=%lld matches=%lld\n",
              static_cast<long long>(op.num_events()),
              static_cast<long long>(op.num_matches()));
  return 0;
}
