// Health-care monitoring: temporal patterns over patient vitals. A sepsis
// early-warning rule is expressed as situations (fever, tachycardia,
// hypotension) and Allen relations between them, and the low-latency
// matcher raises the alarm as soon as the pattern is certain — here, the
// moment blood pressure starts dropping during an ongoing fever.
//
//   ./build/examples/patient_monitoring
#include <cstdio>

#include "core/operator.h"
#include "query/parser.h"

using namespace tpstream;

int main() {
  Schema schema({
      Field{"temp", ValueType::kDouble},  // body temperature, Celsius
      Field{"hr", ValueType::kDouble},    // heart rate, bpm
      Field{"sbp", ValueType::kDouble},   // systolic blood pressure, mmHg
  });

  // Fever lasting at least 10 minutes, tachycardia starting during the
  // fever, and hypotension setting in while both conditions evolve.
  // One tick = one minute here.
  const char* query =
      "FROM Vitals V "
      "DEFINE FEVER AS V.temp >= 38.3 AT LEAST 10, "
      "       TACHY AS V.hr > 110, "
      "       HYPO  AS V.sbp < 90 "
      "PATTERN TACHY during FEVER; TACHY overlaps FEVER; "
      "        TACHY finishes FEVER; TACHY starts FEVER "
      "    AND FEVER overlaps HYPO; FEVER finishes HYPO; "
      "        FEVER contains HYPO "
      "    AND TACHY before HYPO; TACHY meets HYPO; TACHY overlaps HYPO; "
      "        TACHY finishes HYPO; TACHY contains HYPO "
      "WITHIN 4 hours "
      "RETURN max(FEVER.temp) AS peak_temp, "
      "       max(TACHY.hr) AS peak_hr, "
      "       min(HYPO.sbp) AS low_sbp";

  Result<QuerySpec> spec = query::ParseQuery(query, schema);
  if (!spec.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  TPStreamOperator op(spec.value(), {}, [](const Event& alarm) {
    std::printf(
        ">>> t=%lld min: SEPSIS WARNING  peak_temp=%.1fC peak_hr=%.0f "
        "low_sbp=%.0f\n",
        static_cast<long long>(alarm.t), alarm.payload[0].ToDouble(),
        alarm.payload[1].ToDouble(), alarm.payload[2].ToDouble());
  });

  // One reading per minute. Fever [20, 90), tachycardia [35, 80),
  // hypotension [60, 100). The alarm fires at t=80 — the earliest instant
  // the pattern is certain (when the tachycardia subsides during the
  // still-ongoing fever) — 10 minutes before the fever breaks and 20
  // before blood pressure recovers. An end-timestamp matcher (ISEQ-style)
  // could only report it at t=100.
  for (TimePoint t = 1; t <= 120; ++t) {
    const double temp = (t >= 20 && t < 90) ? 38.9 : 36.8;
    const double hr = (t >= 35 && t < 80) ? 125 : 78;
    const double sbp = (t >= 60 && t < 100) ? 82 : 118;
    op.Push(Event({Value(temp), Value(hr), Value(sbp)}, t));
  }

  std::printf("monitored 120 minutes of vitals, %lld alarm(s)\n",
              static_cast<long long>(op.num_matches()));
  return 0;
}
