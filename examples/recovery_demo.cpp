// Crash recovery demo: a durable event log + RecoveryManager around a
// TPStream operator. Three incarnations of the "same process" run in
// sequence over an in-memory filesystem whose SimulateCrash() models a
// power cut (every file rolls back to its last fsync'd size):
//
//   incarnation 1: appends + processes events, checkpoints, crashes
//   incarnation 2: one-call Recover() — restore the newest checkpoint,
//                  replay the log tail — then continues and crashes
//                  again, this time with a torn record mid-write
//   incarnation 3: recovers across the torn tail and finishes the
//                  stream; its final state is byte-identical to an
//                  uninterrupted run over the same events
//
// Swap MemFileSystem for log::PosixFileSystem and the same code runs
// against a real directory.
//
//   ./build/examples/recovery_demo
#include <cstdio>
#include <span>
#include <vector>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "log/event_log.h"
#include "log/memfs.h"
#include "log/recovery.h"
#include "query/builder.h"

using namespace tpstream;

namespace {

QuerySpec DemoSpec() {
  Schema schema({Field{"temperature", ValueType::kDouble},
                 Field{"pressure", ValueType::kDouble}});
  QueryBuilder qb(schema);
  qb.Define("HOT", Gt(FieldRef(0, "temperature"), Literal(80.0)))
      .Define("HIGH", Gt(FieldRef(1, "pressure"), Literal(5.0)))
      .Relate("HOT", Relation::kOverlaps, "HIGH")
      .Within(3600)
      .Return("peak_temp", "HOT", AggKind::kMax, "temperature");
  return qb.Build().value();
}

// Deterministic demo stream: temperature and pressure waves that cross
// their thresholds together every ~20 ticks.
std::vector<Event> DemoStream(int n) {
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    const double temperature = 75.0 + 10.0 * ((i % 20) < 6 ? 1 : -1) +
                               static_cast<double>(i % 5);
    const double pressure = (i % 20) > 2 && (i % 20) < 9 ? 6.5 : 2.0;
    events.push_back(Event({Value(temperature), Value(pressure)},
                           static_cast<TimePoint>(i + 1)));
  }
  return events;
}

struct Incarnation {
  std::unique_ptr<log::EventLog> wal;
  std::unique_ptr<log::RecoveryManager> mgr;
  std::unique_ptr<TPStreamOperator> op;
};

// What a process does at startup: open the log (torn tails are repaired
// here), open the checkpoint directory, recover, report how far back
// the crash threw us.
Incarnation Start(log::MemFileSystem& fs, const QuerySpec& spec) {
  Incarnation inc;
  log::EventLogOptions options;
  // Strictest policy: a barrier per record, so an acknowledged event is
  // never lost (kEveryBytes/kInterval trade that for throughput).
  options.sync.mode = log::SyncMode::kEveryRecord;
  log::OpenReport repair;
  Status s = log::EventLog::Open(&fs, "/wal", options, &inc.wal, &repair);
  if (s.ok()) {
    s = log::RecoveryManager::Open(&fs, "/wal/ckpt", inc.wal.get(), {},
                                   &inc.mgr);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  if (repair.truncated_tail_records > 0) {
    std::printf("  open: truncated a torn tail record (%llu bytes)\n",
                static_cast<unsigned long long>(repair.truncated_tail_bytes));
  }
  inc.op = std::make_unique<TPStreamOperator>(spec, TPStreamOperator::Options{},
                                              nullptr);
  auto report = inc.mgr->Recover(*inc.op);
  if (!report.ok()) {
    std::fprintf(stderr, "recover: %s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("  recovered: checkpoint generation %llu at offset %llu, "
              "replayed %llu events from the log\n",
              static_cast<unsigned long long>(report.value().generation),
              static_cast<unsigned long long>(report.value().offset),
              static_cast<unsigned long long>(report.value().replayed_events));
  return inc;
}

// Durable processing step: append first, push second — an event is only
// processed once the log owns it.
void Feed(Incarnation& inc, const std::vector<Event>& events, size_t from,
          size_t to, size_t checkpoint_every) {
  for (size_t i = from; i < to; ++i) {
    auto appended = inc.wal->Append(std::span<const Event>(&events[i], 1));
    if (!appended.ok()) {
      std::fprintf(stderr, "append: %s\n",
                   appended.status().ToString().c_str());
      std::exit(1);
    }
    inc.op->Push(events[i]);
    if ((i + 1) % checkpoint_every == 0) {
      auto info = inc.mgr->Checkpoint(*inc.op);
      if (!info.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n",
                     info.status().ToString().c_str());
        std::exit(1);
      }
      std::printf("  checkpoint generation %llu (%s, %llu bytes) at "
                  "offset %llu\n",
                  static_cast<unsigned long long>(info.value().generation),
                  info.value().incremental ? "delta" : "full",
                  static_cast<unsigned long long>(info.value().bytes),
                  static_cast<unsigned long long>(info.value().offset));
    }
  }
}

}  // namespace

int main() {
  const QuerySpec spec = DemoSpec();
  const std::vector<Event> events = DemoStream(300);
  log::MemFileSystem fs;

  std::printf("incarnation 1: process events 0..169, checkpoint every 50\n");
  {
    Incarnation inc = Start(fs, spec);
    Feed(inc, events, 0, 170, 50);
  }  // no shutdown: the 20 events past generation 3 live only in the log
  fs.SimulateCrash();  // power cut — any unsynced tail is gone
  std::printf("  CRASH (power cut)\n\n");

  std::printf("incarnation 2: recover, continue to event 239\n");
  size_t resume;
  {
    Incarnation inc = Start(fs, spec);
    resume = inc.wal->end_offset();
    // Events past the recovered offset were lost with the unsynced
    // tail; the source re-sends from the log's end offset (at-least-
    // once delivery upstream, exactly-once state via replay mode).
    Feed(inc, events, resume, 240, 50);
  }
  // This crash tears a record: the last sectors of the final append
  // never hit the platters. Open-time tail repair truncates the partial
  // record cleanly and quarantines its bytes.
  fs.SimulateCrash();
  const std::string last_segment =
      "/wal/" + log::EventLog::SegmentFileName(0);
  fs.TruncateTo(last_segment, fs.FileSize(last_segment) - 5);
  std::printf("  CRASH (torn record)\n\n");

  std::printf("incarnation 3: recover across the torn tail, finish\n");
  Incarnation inc = Start(fs, spec);
  resume = inc.wal->end_offset();
  Feed(inc, events, resume, events.size(), 50);

  // The recovered run must be indistinguishable from one that never
  // crashed: same match count, byte-identical checkpoint.
  TPStreamOperator reference(spec, TPStreamOperator::Options{}, nullptr);
  for (const Event& e : events) reference.Push(e);
  ckpt::Writer wr, wi;
  reference.Checkpoint(wr);
  inc.op->Checkpoint(wi);
  std::printf("\nfinal: %lld matches (reference %lld), checkpoints %s\n",
              static_cast<long long>(inc.op->num_matches()),
              static_cast<long long>(reference.num_matches()),
              wr.buffer() == wi.buffer() ? "byte-identical" : "DIVERGED");
  return wr.buffer() == wi.buffer() ? 0 : 1;
}
