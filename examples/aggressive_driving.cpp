// The paper's running example (Listing 1): detect aggressively driving
// cars — a sharp acceleration followed by hard braking, both accompanied
// by a period of speeding — on a Linear-Road-style sensor stream, using
// the textual query language, PARTITION BY, duration constraints and
// low-latency matching.
//
//   ./build/examples/aggressive_driving [events]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/partitioned_operator.h"
#include "query/parser.h"
#include "workload/linear_road.h"

using namespace tpstream;

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 500000;

  LinearRoadGenerator::Options options;
  options.num_cars = 100;
  options.aggressive_fraction = 0.1;
  LinearRoadGenerator generator(options);

  // Calibrate thresholds from a data sample, as in Section 6.2.1.
  const double speeding = LinearRoadGenerator::SampleFieldPercentile(
      options, LinearRoadGenerator::kSpeed, 99.0, 50000);

  char query[1024];
  std::snprintf(
      query, sizeof(query),
      "FROM CarSensors CS PARTITION BY CS.car_id                 "
      "DEFINE A AS CS.accel > 8 AT LEAST 3s,                     "
      "       B AS CS.speed > %.1f BETWEEN 4s AND 120s,          "
      "       C AS CS.accel < -9 AT LEAST 2s                     "
      "PATTERN A meets B; A overlaps B; A starts B; A during B   "
      "    AND C during B; B finishes C; B overlaps C; B meets C "
      "    AND A before C                                        "
      "WITHIN 5 MINUTES                                          "
      "RETURN first(B.car_id) AS id, avg(B.speed) AS avg_speed,  "
      "       max(A.accel) AS peak_accel, start(B) AS speeding_from",
      speeding);

  Result<QuerySpec> spec = query::ParseQuery(query, generator.schema());
  if (!spec.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed query:\n%s\n\n", query);

  int64_t alerts = 0;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& alert) {
    if (++alerts <= 10) {
      std::printf(
          "t=%-7lld ALERT car=%lld avg_speed=%.1f mph peak_accel=%.1f "
          "m/s^2 (speeding since t=%lld, still ongoing)\n",
          static_cast<long long>(alert.t), alert.payload[0].AsInt(),
          alert.payload[1].ToDouble(), alert.payload[2].ToDouble(),
          alert.payload[3].AsInt());
    }
  });

  for (int i = 0; i < events; ++i) op.Push(generator.Next());

  std::printf(
      "\nprocessed %d events from %zu cars; %lld aggressive-driving "
      "alerts\n",
      events, op.num_partitions(), static_cast<long long>(alerts));
  std::printf(
      "(alerts fire at the beginning of the braking phase — while the\n"
      " speeding situation is still ongoing — per Section 5.3 of the "
      "paper)\n");
  return 0;
}
