// Standalone pipeline: CSV in, CSV out — with out-of-order tolerance and
// partition-parallel execution. Demonstrates composing the io::, ooo::
// and parallel:: extension modules around a TPStream query.
//
// Reads machine telemetry rows (written to a temp stringstream here to
// stay self-contained; swap in std::ifstream for real files), repairs
// bounded disorder, fans partitions out to worker threads, and writes
// every detected overload incident as a CSV row.
//
//   ./build/examples/csv_pipeline
#include <cstdio>
#include <iostream>
#include <mutex>
#include <random>
#include <sstream>

#include "io/csv.h"
#include "ooo/reorder_buffer.h"
#include "parallel/parallel_operator.h"
#include "query/parser.h"

using namespace tpstream;

int main() {
  Schema schema({
      Field{"machine", ValueType::kInt},
      Field{"load", ValueType::kDouble},
      Field{"queue_len", ValueType::kInt},
  });

  // Produce a CSV input with mild timestamp disorder (sensor batches
  // arriving late by up to 3 ticks).
  std::stringstream csv_input;
  {
    csv_input << "timestamp,machine,load,queue_len\n";
    std::mt19937_64 rng(11);
    std::vector<std::string> rows;
    for (TimePoint t = 1; t <= 600; ++t) {
      for (int m = 0; m < 4; ++m) {
        const bool overloaded = (t % 150) > 60 && (t % 150) < 130;
        const double load = overloaded ? 0.97 : 0.35;
        const int queue = (overloaded && (t % 150) > 80) ? 120 : 4;
        char row[96];
        std::snprintf(row, sizeof(row), "%lld,%d,%.2f,%d",
                      static_cast<long long>(t), m, load, queue);
        rows.push_back(row);
      }
    }
    // Perturb row order within small neighborhoods.
    for (size_t i = 0; i + 12 <= rows.size(); i += 12) {
      std::shuffle(rows.begin() + i, rows.begin() + i + 12, rng);
    }
    for (const std::string& row : rows) csv_input << row << "\n";
  }

  auto spec = query::ParseQuery(
      "FROM Telemetry PARTITION BY machine "
      "DEFINE HOT AS load > 0.9 AT LEAST 10s, "
      "       BACKLOG AS queue_len > 100 "
      // Complete prefix group {overlaps, finishes, contains}: the
      // incident is certain (and reported) the moment the backlog starts
      // while the machine is already hot.
      "PATTERN HOT overlaps BACKLOG; HOT finishes BACKLOG; "
      "        HOT contains BACKLOG "
      "WITHIN 10 minutes "
      "RETURN first(HOT.machine) AS machine, max(HOT.load) AS peak_load, "
      "       max(BACKLOG.queue_len) AS peak_queue",
      schema);
  if (!spec.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  std::ostringstream csv_output;
  std::mutex writer_mutex;
  io::CsvEventWriter writer(csv_output,
                            {"machine", "peak_load", "peak_queue"});

  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;
  parallel::ParallelTPStream engine(
      spec.value(), options, [&](const Event& incident) {
        std::lock_guard<std::mutex> lock(writer_mutex);
        writer.Write(incident);
      });

  // CSV -> reorder (slack covers the shuffling) -> parallel engine.
  ooo::ReorderBuffer reorder({/*slack=*/4});
  auto to_engine = [&](const Event& e) { engine.Push(e); };
  io::CsvEventReader reader(csv_input, schema);
  const Status status = reader.ReadAll(
      [&](const Event& e) { reorder.Push(e, to_engine); });
  if (!status.ok()) {
    std::fprintf(stderr, "read error: %s\n", status.ToString().c_str());
    return 1;
  }
  reorder.Flush(to_engine);
  engine.Flush();

  std::printf("rows read:        %lld\n",
              static_cast<long long>(reader.rows_read()));
  std::printf("events reordered: %lld (dropped %lld)\n",
              static_cast<long long>(reorder.num_reordered()),
              static_cast<long long>(reorder.num_dropped()));
  std::printf("incidents:        %lld across %zu machines\n\n",
              static_cast<long long>(engine.num_matches()),
              engine.num_partitions());
  std::printf("--- incidents.csv ---\n%s", csv_output.str().c_str());
  return 0;
}
