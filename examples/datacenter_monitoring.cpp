// Data-center monitoring with per-host partitioning and adaptive plan
// selection: thermal-runaway incidents are flagged when a sustained CPU
// burst overlaps an over-temperature phase whose cooling response stays
// absent. The workload's character changes halfway through (nightly batch
// jobs start everywhere), and the adaptive optimizer re-orders the join
// on the fly — the example prints the plan migrations it performs.
//
//   ./build/examples/datacenter_monitoring
#include <cstdio>
#include <random>

#include "core/partitioned_operator.h"
#include "query/builder.h"

using namespace tpstream;

int main() {
  Schema schema({
      Field{"host", ValueType::kInt},
      Field{"cpu", ValueType::kDouble},   // utilization %
      Field{"temp", ValueType::kDouble},  // intake temperature, Celsius
      Field{"fan", ValueType::kDouble},   // fan speed, RPM
  });

  QueryBuilder qb(schema);
  qb.Define("BURST", Gt(FieldRef(schema, "cpu").value(), Literal(90.0)),
            AtLeast(30))
      .Define("HOT", Gt(FieldRef(schema, "temp").value(), Literal(45.0)))
      .Define("NOFAN", Lt(FieldRef(schema, "fan").value(), Literal(1000.0)))
      .Relate("BURST",
              {Relation::kOverlaps, Relation::kStarts, Relation::kDuring,
               Relation::kMeets},
              "HOT")
      .Relate("NOFAN", {Relation::kDuring, Relation::kOverlaps,
                        Relation::kStartedBy, Relation::kEquals},
              "HOT")
      .Within(1800)
      .Return("host", "HOT", AggKind::kFirst, "host")
      .Return("peak_temp", "HOT", AggKind::kMax, "temp")
      .Return("burst_len", "BURST", AggKind::kCount)
      .PartitionBy("host");
  Result<QuerySpec> spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  int64_t incidents = 0;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& incident) {
    if (++incidents <= 8) {
      std::printf(
          "t=%-6lld INCIDENT host=%lld peak_temp=%.1fC burst_samples=%lld\n",
          static_cast<long long>(incident.t), incident.payload[0].AsInt(),
          incident.payload[1].ToDouble(), incident.payload[2].AsInt());
    }
  });

  // Simulate 16 hosts for two "hours" (1 sample/s/host); batch jobs kick
  // in halfway and make CPU bursts far more common.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  struct Host {
    double cpu = 30, temp = 35, fan = 3000;
    int burst_left = 0, hot_left = 0, nofan_left = 0;
  };
  std::vector<Host> hosts(16);
  constexpr TimePoint kTotal = 7200;
  for (TimePoint t = 1; t <= kTotal; ++t) {
    const bool batch_window = t > kTotal / 2;
    for (size_t h = 0; h < hosts.size(); ++h) {
      Host& host = hosts[h];
      if (host.burst_left == 0 && uni(rng) < (batch_window ? 0.01 : 0.001)) {
        host.burst_left = 40 + static_cast<int>(uni(rng) * 200);
        host.hot_left = host.burst_left + 60;
        if (uni(rng) < 0.5) host.nofan_left = host.hot_left - 20;
      }
      host.cpu = host.burst_left > 0 ? 95 + 4 * uni(rng) : 25 + 30 * uni(rng);
      host.temp = host.hot_left > 0 ? 46 + 6 * uni(rng) : 33 + 5 * uni(rng);
      host.fan = host.nofan_left > 0 ? 500 : 2800 + 400 * uni(rng);
      if (host.burst_left > 0) --host.burst_left;
      if (host.hot_left > 0) --host.hot_left;
      if (host.nofan_left > 0) --host.nofan_left;

      op.Push(Event({Value(static_cast<int64_t>(h)), Value(host.cpu),
                     Value(host.temp), Value(host.fan)},
                    t));
    }
  }

  std::printf(
      "\n%lld thermal incidents across %zu hosts (%lld samples "
      "processed)\n",
      static_cast<long long>(incidents), op.num_partitions(),
      static_cast<long long>(op.num_events()));
  return 0;
}
