// Ablation: cost and benefit of low-latency matching (Section 5.3). The
// paper claims that the power-set combination building of Algorithm 4
// "has only minimal impact on the runtime performance" — this harness
// quantifies it: the same workload and query run once with the baseline
// matcher (detection at end timestamps) and once with the low-latency
// matcher, reporting throughput, match counts and the average
// application-time detection gain. A second section measures the
// adaptive optimizer's bookkeeping overhead on a stable workload
// (paper: < 2%).
// Flags: --events=N
#include <cstdio>
#include <map>

#include "algebra/detection.h"
#include "bench/bench_util.h"
#include "core/operator.h"

namespace tpstream {
namespace bench {
namespace {

TemporalPattern AblationPattern() {
  TemporalPattern p({"A", "B", "C"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  (void)p.AddRelation(1, Relation::kOverlaps, 2);
  (void)p.AddRelation(1, Relation::kContains, 2);
  (void)p.AddRelation(1, Relation::kFinishes, 2);
  return p;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 2000000);
  const Duration window = 5000;

  std::printf(
      "# Ablation: low-latency matching on/off, %lld synthetic events\n"
      "# pattern: A before B AND (B overlaps C; B contains C; "
      "B finishes C)\n"
      "# columns: mode  time_ms  kevents_s  matches  avg_gain_s\n",
      static_cast<long long>(events));

  const TemporalPattern pattern = AblationPattern();
  // Configuration identity: the per-symbol start timestamps.
  using Key = std::vector<TimePoint>;
  std::map<Key, TimePoint> detections[2];  // [0]=baseline, [1]=low latency

  for (const bool low_latency : {false, true}) {
    QuerySpec spec = SyntheticSpec(3, pattern, window);
    TPStreamOperator::Options options;
    options.low_latency = low_latency;
    TPStreamOperator op(spec, options, nullptr);
    std::map<Key, TimePoint>& mine = detections[low_latency ? 1 : 0];
    op.SetMatchObserver([&mine](const Match& m) {
      Key key;
      key.reserve(m.config.size());
      for (const Situation& s : m.config) key.push_back(s.ts);
      mine.emplace(std::move(key), m.detected_at);
    });

    SyntheticGenerator::Options gopts;
    gopts.num_streams = 3;
    SyntheticGenerator gen(gopts);
    const double ms = TimeMs([&] {
      for (int64_t i = 0; i < events; ++i) op.Push(gen.Next());
    });

    // Average application-time gain over matches both modes report.
    double gain_sum = 0;
    int64_t gains = 0;
    if (low_latency) {
      for (const auto& [key, base_t] : detections[0]) {
        auto it = mine.find(key);
        if (it == mine.end()) continue;
        gain_sum += static_cast<double>(base_t - it->second);
        ++gains;
      }
    }
    std::printf("%-12s %9.1f %10.0f %9lld %10.1f\n",
                low_latency ? "low-latency" : "baseline", ms,
                events / std::max(ms, 0.001),
                static_cast<long long>(op.num_matches()),
                gains > 0 ? gain_sum / gains : 0.0);
    std::fflush(stdout);
  }

  std::printf(
      "\n# Adaptive optimizer bookkeeping on a stable workload\n"
      "# columns: mode  time_ms  kevents_s  migrations\n");
  for (const bool adaptive : {false, true}) {
    QuerySpec spec = SyntheticSpec(3, pattern, window);
    TPStreamOperator::Options options;
    options.adaptive = adaptive;
    if (!adaptive) options.fixed_order = std::vector<int>{1, 2, 0};
    TPStreamOperator op(spec, options, nullptr);
    SyntheticGenerator::Options gopts;
    gopts.num_streams = 3;
    SyntheticGenerator gen(gopts);
    const double ms = TimeMs([&] {
      for (int64_t i = 0; i < events; ++i) op.Push(gen.Next());
    });
    std::printf("%-12s %9.1f %10.0f %9lld\n",
                adaptive ? "adaptive" : "pinned", ms,
                events / std::max(ms, 0.001),
                static_cast<long long>(op.plan_migrations()));
    std::fflush(stdout);
  }
  std::printf(
      "# expected shape: low-latency matches a superset at comparable\n"
      "# throughput (the paper: minimal impact) with a large positive\n"
      "# detection gain; adaptive bookkeeping costs <2%% on stable "
      "load.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
