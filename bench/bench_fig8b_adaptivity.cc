// Figure 8(b): dynamic plan adaptation under workload shifts
// (Section 6.4.2). Q3 (A before B AND A before C AND B before C) runs
// over three phases whose situation occurrence ratios shift from 1:1:1
// to 1:50:50 and finally 50:1:50. Variants:
//   TPS-1 / TPS-2: the two best initial plans, pinned;
//   TPS-A: the adaptive optimizer (EMA statistics, threshold-triggered
//          re-optimization, free migration);
//   TPS-O: an oracle that switches to the per-phase best plan exactly at
//          the phase boundary (calibrated upfront on a sample per phase).
// Flags: --events=N --window=SECONDS --alpha=A --threshold=T
#include <cstdio>

#include "bench/bench_util.h"
#include "core/operator.h"
#include "optimizer/plan_optimizer.h"

namespace tpstream {
namespace bench {
namespace {

TemporalPattern Q3() {
  TemporalPattern p({"A", "B", "C"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  (void)p.AddRelation(0, Relation::kBefore, 2);
  (void)p.AddRelation(1, Relation::kBefore, 2);
  return p;
}

const std::vector<std::vector<double>>& PhaseRatios() {
  static const std::vector<std::vector<double>> kRatios = {
      {1, 1, 1}, {1, 50, 50}, {50, 1, 50}};
  return kRatios;
}

std::string OrderString(const std::vector<int>& order) {
  std::string s;
  for (int sym : order) {
    if (!s.empty()) s += ">";
    s += static_cast<char>('A' + sym);
  }
  return s;
}

// Best pinned order for one phase's stream characteristics, found by
// measuring every valid order on a calibration sample.
std::vector<int> CalibratePhaseBest(const TemporalPattern& pattern,
                                    const std::vector<double>& ratios,
                                    Duration window, int64_t sample_events) {
  PlanOptimizer optimizer(&pattern);
  std::vector<int> best_order;
  double best_throughput = -1;
  for (const std::vector<int>& order : optimizer.EnumerateOrders()) {
    QuerySpec spec = SyntheticSpec(3, pattern, window);
    TPStreamOperator::Options options;
    options.fixed_order = order;
    TPStreamOperator op(spec, options, nullptr);
    SyntheticGenerator::Options gopts;
    gopts.num_streams = 3;
    SyntheticGenerator gen(gopts);
    gen.SetRatios(ratios);
    const double ms = TimeMs([&] {
      for (int64_t i = 0; i < sample_events; ++i) op.Push(gen.Next());
    });
    const double throughput = sample_events / std::max(ms, 0.001);
    if (throughput > best_throughput) {
      best_throughput = throughput;
      best_order = order;
    }
  }
  return best_order;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 3000000);
  const Duration window = flags.GetInt("window", 3000);
  const double alpha = flags.GetDouble("alpha", 0.01);
  const double threshold = flags.GetDouble("threshold", 0.2);
  const int64_t phase_events = events / 3;

  const TemporalPattern pattern = Q3();

  std::printf(
      "# Figure 8(b): adaptivity on Q3, ratio shift 1:1:1 -> 1:50:50 -> "
      "50:1:50\n"
      "# events=%lld window=%lld alpha=%.3f threshold=%.2f\n",
      static_cast<long long>(events), static_cast<long long>(window), alpha,
      threshold);

  // Oracle calibration: per-phase best plan on a 100k-event sample.
  std::vector<std::vector<int>> oracle_plans;
  for (const auto& ratios : PhaseRatios()) {
    oracle_plans.push_back(
        CalibratePhaseBest(pattern, ratios, window, 100000));
  }
  std::printf("# oracle plans: %s | %s | %s\n",
              OrderString(oracle_plans[0]).c_str(),
              OrderString(oracle_plans[1]).c_str(),
              OrderString(oracle_plans[2]).c_str());
  std::printf("# columns: variant  phase1_kev_s  phase2_kev_s  phase3_kev_s"
              "  total_ms  migrations\n");

  struct Variant {
    const char* name;
    bool adaptive;
    std::vector<int> fixed;  // empty: adaptive or oracle
    bool oracle;
  };
  const std::vector<Variant> variants = {
      {"TPS-1", false, {2, 1, 0}, false},
      {"TPS-2", false, {2, 0, 1}, false},  // C > A > B
      {"TPS-A", true, {}, false},
      {"TPS-O", false, {}, true},
  };

  for (const Variant& variant : variants) {
    QuerySpec spec = SyntheticSpec(3, pattern, window);
    TPStreamOperator::Options options;
    options.stats_alpha = alpha;
    options.reopt_threshold = threshold;
    if (variant.adaptive) {
      options.adaptive = true;
    } else if (!variant.fixed.empty()) {
      options.fixed_order = variant.fixed;
    } else {
      options.adaptive = false;  // oracle: manual switches
    }
    TPStreamOperator op(spec, options, nullptr);

    SyntheticGenerator::Options gopts;
    gopts.num_streams = 3;
    SyntheticGenerator gen(gopts);

    double total_ms = 0;
    std::vector<double> phase_throughput;
    for (size_t phase = 0; phase < PhaseRatios().size(); ++phase) {
      gen.SetRatios(PhaseRatios()[phase]);
      if (variant.oracle) op.ForceEvaluationOrder(oracle_plans[phase]);
      const double ms = TimeMs([&] {
        for (int64_t i = 0; i < phase_events; ++i) op.Push(gen.Next());
      });
      total_ms += ms;
      phase_throughput.push_back(phase_events / std::max(ms, 0.001));
    }
    std::printf("%-6s %13.0f %13.0f %13.0f %9.0f %10lld\n", variant.name,
                phase_throughput[0], phase_throughput[1],
                phase_throughput[2], total_ms,
                static_cast<long long>(op.plan_migrations()));
    std::fflush(stdout);
  }
  std::printf(
      "# expected shape (paper): each pinned plan loses in one skewed\n"
      "# phase; TPS-A tracks TPS-O within a few percent total overhead.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
