// Overload benchmark backing BENCH_overload.json: drives the parallel
// operator at ~2x its consumer-bound capacity (the consumer is slowed by
// a fixed busy-spin per match) under each backpressure policy — kBlock,
// kDropNewest, kDropOldest — and reports producer-side throughput, the
// wall-clock latency distribution of individual Push() calls, and the
// shed/ring accounting of the Degradation contract
// (docs/architecture.md).
//
// The capacity is calibrated first: a kBlock run over the same workload
// measures the end-to-end drain rate with the slow consumer; the
// measured phase then paces the producer at 2x that rate. Under kBlock
// the extra offered load turns into push-latency (the producer parks;
// nothing is shed); under the drop policies push latency stays bounded
// by the shed-spin budget and the excess is shed and counted.
//
// `--json=FILE` writes a "tpstream-bench-overload-v1" document, the
// input of cmake/check_bench_regression.cmake and the format of the
// committed BENCH_overload.json baseline. The gate enforces that kBlock
// sheds nothing and that the drop policies' push p99 stays bounded
// relative to the baseline.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"
#include "robust/dead_letter.h"
#include "robust/overload_policy.h"

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The keyed two-situation query of the parallel suite: A (flag high)
/// meets/before B (flag low) within 200 ticks, partitioned by key.
QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(200)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "query build failed: %s\n",
                 spec.status().ToString().c_str());
    std::exit(1);
  }
  return spec.value();
}

/// Match-heavy keyed boolean phases (frequent flips): the consumer-side
/// match work dominates, so the busy-spin sink sets the drain capacity.
std::vector<Event> KeyedWorkload(int keys, int64_t total_events,
                                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  std::bernoulli_distribution flip(0.5);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(total_events));
  TimePoint t = 0;
  while (static_cast<int64_t>(events.size()) < total_events) {
    ++t;
    for (int k = 0;
         k < keys && static_cast<int64_t>(events.size()) < total_events;
         ++k) {
      if (flip(rng)) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

struct OverloadMeasurement {
  int64_t events = 0;
  double elapsed_s = 0;
  double events_per_sec = 0;      // producer-side (includes shed events)
  double offered_eps = 0;         // pacing target (2x calibrated capacity)
  int64_t matches = 0;
  int64_t shed_batches = 0;
  int64_t shed_events = 0;
  int64_t drop_oldest_fallback = 0;
  int64_t ring_full = 0;
  int64_t quarantined = 0;        // dead-letter deliveries (count-only sink)
  obs::HistogramSnapshot push_ns;
};

parallel::ParallelTPStream::Options MakeOptions(
    robust::BackpressurePolicy policy, const Flags& flags,
    robust::DeadLetterSink* dead_letter) {
  parallel::ParallelTPStream::Options options;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  options.batch_size = static_cast<size_t>(flags.GetInt("batch", 64));
  options.ring_capacity = static_cast<size_t>(flags.GetInt("ring", 4));
  options.backpressure = policy;
  options.dead_letter = dead_letter;
  return options;
}

/// Busy-spin per match: pins the consumer's drain rate well below the
/// producer's push rate, independent of the host's memory system.
struct SpinSink {
  int64_t spin;
  void operator()(const Event&) const {
    // Volatile loads in the condition and a volatile store per round
    // serialize the loop against unrolling; plain assignment statements
    // to a volatile are not deprecated (unlike ++/compound assignment).
    volatile int64_t counter = 0;
    while (counter < spin) counter = counter + 1;
  }
};

/// Calibration: end-to-end drain rate (events/sec) of the slow consumer
/// under kBlock — the capacity the measured phase doubles.
double CalibrateCapacity(const QuerySpec& spec, const Flags& flags,
                         const std::vector<Event>& events, int64_t spin) {
  parallel::ParallelTPStream op(spec,
                                MakeOptions(robust::BackpressurePolicy::kBlock,
                                            flags, nullptr),
                                SpinSink{spin});
  const int64_t t0 = NowNs();
  for (const Event& e : events) op.Push(e);
  op.Flush();
  const int64_t t1 = NowNs();
  const double elapsed_s = static_cast<double>(t1 - t0) * 1e-9;
  return elapsed_s > 0 ? static_cast<double>(events.size()) / elapsed_s : 1e9;
}

OverloadMeasurement RunPolicy(const QuerySpec& spec, const Flags& flags,
                              robust::BackpressurePolicy policy,
                              const std::vector<Event>& warmup,
                              const std::vector<Event>& events,
                              int64_t spin, double offered_eps) {
  OverloadMeasurement m;
  m.events = static_cast<int64_t>(events.size());
  m.offered_eps = offered_eps;

  // Count-only sink (capacity 0): exercises the quarantine path without
  // retaining the shed payloads.
  robust::CollectingDeadLetterSink dead_letter(0);
  parallel::ParallelTPStream op(spec, MakeOptions(policy, flags, &dead_letter),
                                SpinSink{spin});

  for (const Event& e : warmup) op.Push(e);
  op.Flush();

  // Paced producer: event i is offered at t0 + i/offered_eps. Under the
  // drop policies the producer keeps up with the schedule and the excess
  // is shed; under kBlock each Push absorbs the backlog as latency.
  const double interval_ns = 1e9 / offered_eps;
  obs::LatencyHistogram hist;
  const int64_t t0 = NowNs();
  for (size_t i = 0; i < events.size(); ++i) {
    const int64_t due = t0 + static_cast<int64_t>(interval_ns * i);
    while (NowNs() < due) {
    }
    const int64_t start = NowNs();
    op.Push(events[i]);
    hist.Record(NowNs() - start);
  }
  op.Flush();
  const int64_t t1 = NowNs();

  m.elapsed_s = static_cast<double>(t1 - t0) * 1e-9;
  m.events_per_sec =
      m.elapsed_s > 0 ? static_cast<double>(events.size()) / m.elapsed_s : 0;
  m.push_ns = hist.Snapshot();
  m.matches = op.num_matches();
  m.shed_batches = op.shed_batches();
  m.shed_events = op.shed_events();
  m.quarantined = dead_letter.accepted() + dead_letter.dropped();
  const obs::MetricsSnapshot metrics = op.Metrics();
  m.ring_full = metrics.counters.at("parallel.ring_full");
  m.drop_oldest_fallback =
      metrics.counters.at("parallel.drop_oldest_fallback");
  return m;
}

bool WriteOverloadJson(
    const std::string& path, int cpus, double capacity_eps,
    const std::vector<std::pair<std::string, OverloadMeasurement>>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"tpstream-bench-overload-v1\",\n"
               "  \"cpus\": %d,\n  \"capacity_eps\": %.1f,\n  \"runs\": {\n",
               cpus, capacity_eps);
  for (size_t i = 0; i < runs.size(); ++i) {
    const OverloadMeasurement& m = runs[i].second;
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"events\": %lld,\n"
        "      \"elapsed_s\": %.6f,\n"
        "      \"events_per_sec\": %.1f,\n"
        "      \"offered_eps\": %.1f,\n"
        "      \"matches\": %lld,\n"
        "      \"shed_batches\": %lld,\n"
        "      \"shed_events\": %lld,\n"
        "      \"drop_oldest_fallback\": %lld,\n"
        "      \"ring_full\": %lld,\n"
        "      \"quarantined\": %lld,\n"
        "      \"push_ns\": {\"count\": %lld, \"p50\": %lld, \"p95\": %lld, "
        "\"p99\": %lld, \"max\": %lld}\n"
        "    }%s\n",
        runs[i].first.c_str(), static_cast<long long>(m.events), m.elapsed_s,
        m.events_per_sec, m.offered_eps, static_cast<long long>(m.matches),
        static_cast<long long>(m.shed_batches),
        static_cast<long long>(m.shed_events),
        static_cast<long long>(m.drop_oldest_fallback),
        static_cast<long long>(m.ring_full),
        static_cast<long long>(m.quarantined),
        static_cast<long long>(m.push_ns.count),
        static_cast<long long>(m.push_ns.Quantile(50)),
        static_cast<long long>(m.push_ns.Quantile(95)),
        static_cast<long long>(m.push_ns.Quantile(99)),
        static_cast<long long>(m.push_ns.max),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("# overload JSON written to %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int keys = static_cast<int>(flags.GetInt("keys", 16));
  const int64_t total = flags.GetInt("events", 40000);
  const int64_t warmup_n = flags.GetInt("warmup", 4000);
  // Heavy enough that draining one batch outlasts the drop policies'
  // shed-spin budget — otherwise a full ring always clears within the
  // spin and nothing is ever shed (kDropNewest degenerates to kBlock).
  const int64_t spin = flags.GetInt("spin", 30000);
  const double factor = flags.GetDouble("overload-factor", 2.0);

  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> all =
      KeyedWorkload(keys, warmup_n + total, /*seed=*/1);
  const std::vector<Event> warmup(all.begin(), all.begin() + warmup_n);
  const std::vector<Event> measured(all.begin() + warmup_n, all.end());

  // Capacity of the slowed consumer, from a dedicated kBlock pass over
  // the measured slice (unpaced: the ring applies the backpressure).
  const double capacity_eps =
      CalibrateCapacity(spec, flags, measured, spin);
  const double offered_eps = capacity_eps * factor;
  std::printf("# capacity %.0f evt/s, offering %.0f evt/s (%.1fx)\n",
              capacity_eps, offered_eps, factor);

  const std::pair<const char*, robust::BackpressurePolicy> policies[] = {
      {"block", robust::BackpressurePolicy::kBlock},
      {"drop_newest", robust::BackpressurePolicy::kDropNewest},
      {"drop_oldest", robust::BackpressurePolicy::kDropOldest},
  };
  std::vector<std::pair<std::string, OverloadMeasurement>> runs;
  std::printf(
      "# %-12s %12s %12s %10s %10s %10s %10s\n", "policy", "evt/s",
      "push_p99_ns", "shed_evt", "matches", "ring_full", "fallback");
  for (const auto& [name, policy] : policies) {
    OverloadMeasurement m =
        RunPolicy(spec, flags, policy, warmup, measured, spin, offered_eps);
    std::printf("  %-12s %12.0f %12lld %10lld %10lld %10lld %10lld\n", name,
                m.events_per_sec,
                static_cast<long long>(m.push_ns.Quantile(99)),
                static_cast<long long>(m.shed_events),
                static_cast<long long>(m.matches),
                static_cast<long long>(m.ring_full),
                static_cast<long long>(m.drop_oldest_fallback));
    runs.emplace_back(name, std::move(m));
  }

  // Invariants the JSON gate re-checks against the committed baseline:
  // kBlock is lossless; the drop policies actually shed under 2x load
  // and deliver every shed event to the dead-letter sink.
  for (const auto& [name, m] : runs) {
    const bool is_block = std::string(name) == "block";
    if (is_block && m.shed_events != 0) {
      std::fprintf(stderr, "kBlock shed %lld events\n",
                   static_cast<long long>(m.shed_events));
      return 1;
    }
    if (!is_block && m.quarantined != m.shed_batches) {
      std::fprintf(stderr,
                   "%s: %lld quarantined items vs %lld shed batches\n",
                   name.c_str(), static_cast<long long>(m.quarantined),
                   static_cast<long long>(m.shed_batches));
      return 1;
    }
  }

  const std::string json = flags.GetString("json", "");
  if (!json.empty()) {
    const int cpus =
        static_cast<int>(std::thread::hardware_concurrency());
    if (!WriteOverloadJson(json, cpus, capacity_eps, runs)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) {
  return tpstream::bench::Main(argc, argv);
}
