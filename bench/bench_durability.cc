// Durability cost benchmark backing BENCH_durability.json: exercises the
// durable event log and the RecoveryManager over the deterministic MemFS
// (log/memfs.h), so the numbers isolate the log's framing, checksum and
// barrier bookkeeping from device latency and stay comparable across
// machines. Three families of runs:
//
//   append.every_record   WAL append throughput, fsync after every record
//   append.every_64k      group commit by volume (64 KiB barriers)
//   append.interval       group commit by time (5 ms barriers)
//
//   recovery.n10000       one-call Recover() wall time: restore the
//   recovery.n100000      checkpoint, replay a ~90% log tail
//
//   incremental.k8        full-vs-delta checkpoint bytes over a
//                         PartitionedTPStream (full every 8th generation)
//
// Each run proves its durability claim before it reports a number: the
// append runs reopen the log and replay it, comparing every event
// byte-for-byte (ckpt wire format) against what was appended; the
// recovery and incremental runs re-checkpoint the recovered engine and
// compare against the uninterrupted reference. A divergence aborts the
// bench (exit 1); the JSON records it per run as "replay_verified" /
// "restore_verified".
//
// `--json=FILE` writes a "tpstream-bench-durability-v1" document, the
// input of cmake/check_bench_regression.cmake and the format of the
// committed BENCH_durability.json baseline. The gate enforces per-run
// throughput floors, the fsync accounting of the sync policies (one
// barrier per record vs actual grouping), the verified flags, and the
// headline incremental invariant: mean delta bytes must stay under half
// the mean full-snapshot bytes.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "log/event_log.h"
#include "log/memfs.h"
#include "log/recovery.h"
#include "query/builder.h"

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

QuerySpec DurabilitySpec(bool partitioned) {
  Schema schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    std::abort();
  }
  return spec.value();
}

std::vector<Event> MakeStream(int64_t n, int num_keys) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  // Deterministic xorshift random walk (same stream on every machine).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto uni = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  double speed = 0.5, temp = 0.5;
  for (int64_t i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni() - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni() - 0.5) * 0.4, 0.0, 1.0);
    // Keys advance in blocks of 16 consecutive ticks so a partition sees
    // contiguous sub-streams (per-event striping would leave every
    // partition's events further apart than the query window). A wide
    // key space keeps the per-interval dirty set a small fraction of the
    // partitions a full snapshot covers — the situation the incremental
    // checkpoint path exists for.
    events.push_back(Event({Value(speed), Value(temp),
                            Value(static_cast<int64_t>((i / 16) % num_keys))},
                           static_cast<TimePoint>(i + 1)));
  }
  return events;
}

struct RunResult {
  std::string name;
  int64_t events = 0;
  double events_per_sec = 0;
  bool verified = false;
  // append.* runs
  int64_t batches = 0;
  int64_t fsyncs = 0;
  int64_t appended_bytes = 0;
  // recovery.* runs
  double recovery_ms = 0;
  int64_t replayed_events = 0;
  // incremental.* runs
  int64_t checkpoints = 0;
  int64_t full_checkpoints = 0;
  int64_t delta_checkpoints = 0;
  double bytes_per_full = 0;
  double bytes_per_delta = 0;
  enum Kind { kAppend, kRecovery, kIncremental } kind = kAppend;
};

/// Serializes `events` with the ckpt wire format (the log's own event
/// encoding, bit-exact doubles) for byte-level replay comparison.
std::string WireBytes(const std::vector<Event>& events) {
  ckpt::Writer w;
  for (const Event& e : events) w.WriteEvent(e);
  return w.Take();
}

/// Appends the stream under `policy`, then reopens the log and replays
/// it from offset 0, comparing every event byte-for-byte.
RunResult RunAppend(const std::string& name, const log::SyncPolicy& policy,
                    const std::vector<Event>& events, int64_t batch) {
  RunResult r;
  r.name = name;
  r.kind = RunResult::kAppend;
  r.events = static_cast<int64_t>(events.size());

  log::MemFileSystem fs;
  log::EventLogOptions options;
  options.sync = policy;
  std::unique_ptr<log::EventLog> wal;
  Status s = log::EventLog::Open(&fs, "/wal", options, &wal);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: open: %s\n", name.c_str(),
                 s.ToString().c_str());
    return r;
  }

  const int64_t start = NowNs();
  for (size_t i = 0; i < events.size(); i += static_cast<size_t>(batch)) {
    const size_t n = std::min(static_cast<size_t>(batch), events.size() - i);
    auto appended = wal->Append(std::span<const Event>(&events[i], n));
    if (!appended.ok()) {
      std::fprintf(stderr, "%s: append: %s\n", name.c_str(),
                   appended.status().ToString().c_str());
      return r;
    }
    ++r.batches;
  }
  // The final barrier is part of the durability cost being measured.
  s = wal->Sync();
  const double elapsed_s = static_cast<double>(NowNs() - start) * 1e-9;
  if (!s.ok()) {
    std::fprintf(stderr, "%s: sync: %s\n", name.c_str(), s.ToString().c_str());
    return r;
  }

  r.events_per_sec = static_cast<double>(events.size()) / elapsed_s;
  r.fsyncs = static_cast<int64_t>(fs.num_syncs());
  r.appended_bytes = static_cast<int64_t>(fs.total_appended());

  // Durability proof: a fresh open must replay the identical stream.
  wal.reset();
  std::unique_ptr<log::EventLog> reopened;
  s = log::EventLog::Open(&fs, "/wal", options, &reopened);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: reopen: %s\n", name.c_str(),
                 s.ToString().c_str());
    return r;
  }
  std::vector<Event> replayed;
  replayed.reserve(events.size());
  s = reopened->ReplayFrom(0,
                           [&replayed](const Event& e) { replayed.push_back(e); });
  if (!s.ok()) {
    std::fprintf(stderr, "%s: replay: %s\n", name.c_str(),
                 s.ToString().c_str());
    return r;
  }
  r.verified = replayed.size() == events.size() &&
               WireBytes(replayed) == WireBytes(events);
  if (!r.verified) {
    std::fprintf(stderr,
                 "%s: replay diverged from the appended stream "
                 "(%zu vs %zu events)\n",
                 name.c_str(), replayed.size(), events.size());
  }
  return r;
}

/// Feeds `events` through a checkpointed operator + WAL, takes one
/// checkpoint at the 10% mark, then measures a cold one-call Recover():
/// restore the checkpoint and replay the remaining ~90% tail.
RunResult RunRecovery(const std::string& name,
                      const std::vector<Event>& events) {
  RunResult r;
  r.name = name;
  r.kind = RunResult::kRecovery;
  r.events = static_cast<int64_t>(events.size());

  log::MemFileSystem fs;
  log::EventLogOptions log_options;
  log_options.sync.mode = log::SyncMode::kEveryBytes;
  log_options.sync.sync_bytes = 64 * 1024;
  std::unique_ptr<log::EventLog> wal;
  Status s = log::EventLog::Open(&fs, "/wal", log_options, &wal);
  std::unique_ptr<log::RecoveryManager> mgr;
  if (s.ok()) {
    s = log::RecoveryManager::Open(&fs, "/wal/ckpt", wal.get(),
                                   log::RecoveryManager::Options{}, &mgr);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s: open: %s\n", name.c_str(), s.ToString().c_str());
    return r;
  }

  const QuerySpec spec = DurabilitySpec(/*partitioned=*/false);
  TPStreamOperator reference(spec, TPStreamOperator::Options{}, nullptr);
  const size_t ckpt_at = events.size() / 10;
  for (size_t i = 0; i < events.size(); ++i) {
    auto appended = wal->Append(std::span<const Event>(&events[i], 1));
    if (!appended.ok()) {
      std::fprintf(stderr, "%s: append: %s\n", name.c_str(),
                   appended.status().ToString().c_str());
      return r;
    }
    reference.Push(events[i]);
    if (i + 1 == ckpt_at) {
      auto info = mgr->Checkpoint(reference);
      if (!info.ok()) {
        std::fprintf(stderr, "%s: checkpoint: %s\n", name.c_str(),
                     info.status().ToString().c_str());
        return r;
      }
    }
  }
  s = wal->Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "%s: sync: %s\n", name.c_str(), s.ToString().c_str());
    return r;
  }

  // Cold restart: fresh log handle, fresh manager, fresh engine.
  wal.reset();
  mgr.reset();
  std::unique_ptr<log::EventLog> wal2;
  s = log::EventLog::Open(&fs, "/wal", log_options, &wal2);
  std::unique_ptr<log::RecoveryManager> mgr2;
  if (s.ok()) {
    s = log::RecoveryManager::Open(&fs, "/wal/ckpt", wal2.get(),
                                   log::RecoveryManager::Options{}, &mgr2);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s: reopen: %s\n", name.c_str(),
                 s.ToString().c_str());
    return r;
  }
  TPStreamOperator recovered(spec, TPStreamOperator::Options{}, nullptr);
  const int64_t t0 = NowNs();
  auto report = mgr2->Recover(recovered);
  const double recover_s = static_cast<double>(NowNs() - t0) * 1e-9;
  if (!report.ok()) {
    std::fprintf(stderr, "%s: recover: %s\n", name.c_str(),
                 report.status().ToString().c_str());
    return r;
  }
  r.recovery_ms = recover_s * 1e3;
  r.replayed_events = static_cast<int64_t>(report.value().replayed_events);
  r.events_per_sec = static_cast<double>(r.replayed_events) / recover_s;

  ckpt::Writer final_ref, final_rec;
  reference.Checkpoint(final_ref);
  recovered.Checkpoint(final_rec);
  r.verified = final_ref.buffer() == final_rec.buffer() &&
               recovered.num_matches() == reference.num_matches();
  if (!r.verified) {
    std::fprintf(stderr,
                 "%s: recovered run diverged from the uninterrupted run "
                 "(%zu vs %zu final bytes, %lld vs %lld matches)\n",
                 name.c_str(), final_rec.buffer().size(),
                 final_ref.buffer().size(),
                 static_cast<long long>(recovered.num_matches()),
                 static_cast<long long>(reference.num_matches()));
  }
  return r;
}

/// Periodic RecoveryManager checkpoints over a PartitionedTPStream with
/// a full snapshot every 8th generation; reports mean file bytes per
/// full vs per delta and proves the chain restores byte-identically.
RunResult RunIncremental(const std::string& name,
                         const std::vector<Event>& events, int64_t interval) {
  RunResult r;
  r.name = name;
  r.kind = RunResult::kIncremental;
  r.events = static_cast<int64_t>(events.size());

  log::MemFileSystem fs;
  log::EventLogOptions log_options;
  log_options.sync.mode = log::SyncMode::kEveryBytes;
  log_options.sync.sync_bytes = 64 * 1024;
  std::unique_ptr<log::EventLog> wal;
  Status s = log::EventLog::Open(&fs, "/wal", log_options, &wal);
  std::unique_ptr<log::RecoveryManager> mgr;
  log::RecoveryManager::Options mgr_options;
  mgr_options.full_snapshot_interval = 8;
  if (s.ok()) {
    s = log::RecoveryManager::Open(&fs, "/wal/ckpt", wal.get(), mgr_options,
                                   &mgr);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s: open: %s\n", name.c_str(), s.ToString().c_str());
    return r;
  }

  const QuerySpec spec = DurabilitySpec(/*partitioned=*/true);
  PartitionedTPStream reference(spec, TPStreamOperator::Options{}, nullptr);
  int64_t full_bytes = 0, delta_bytes = 0;

  const int64_t start = NowNs();
  for (size_t i = 0; i < events.size(); ++i) {
    auto appended = wal->Append(std::span<const Event>(&events[i], 1));
    if (!appended.ok()) {
      std::fprintf(stderr, "%s: append: %s\n", name.c_str(),
                   appended.status().ToString().c_str());
      return r;
    }
    reference.Push(events[i]);
    if ((static_cast<int64_t>(i) + 1) % interval == 0) {
      auto info = mgr->Checkpoint(reference);
      if (!info.ok()) {
        std::fprintf(stderr, "%s: checkpoint: %s\n", name.c_str(),
                     info.status().ToString().c_str());
        return r;
      }
      ++r.checkpoints;
      if (info.value().incremental) {
        ++r.delta_checkpoints;
        delta_bytes += static_cast<int64_t>(info.value().bytes);
      } else {
        ++r.full_checkpoints;
        full_bytes += static_cast<int64_t>(info.value().bytes);
      }
    }
  }
  const double elapsed_s = static_cast<double>(NowNs() - start) * 1e-9;
  r.events_per_sec = static_cast<double>(events.size()) / elapsed_s;
  r.bytes_per_full =
      r.full_checkpoints == 0
          ? 0.0
          : static_cast<double>(full_bytes) /
                static_cast<double>(r.full_checkpoints);
  r.bytes_per_delta =
      r.delta_checkpoints == 0
          ? 0.0
          : static_cast<double>(delta_bytes) /
                static_cast<double>(r.delta_checkpoints);

  // Durability proof: cold-start recovery (full + delta chain + replay)
  // must land byte-identically on the reference's state.
  s = wal->Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "%s: sync: %s\n", name.c_str(), s.ToString().c_str());
    return r;
  }
  wal.reset();
  mgr.reset();
  std::unique_ptr<log::EventLog> wal2;
  s = log::EventLog::Open(&fs, "/wal", log_options, &wal2);
  std::unique_ptr<log::RecoveryManager> mgr2;
  if (s.ok()) {
    s = log::RecoveryManager::Open(&fs, "/wal/ckpt", wal2.get(), mgr_options,
                                   &mgr2);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s: reopen: %s\n", name.c_str(),
                 s.ToString().c_str());
    return r;
  }
  PartitionedTPStream recovered(spec, TPStreamOperator::Options{}, nullptr);
  auto report = mgr2->Recover(recovered);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: recover: %s\n", name.c_str(),
                 report.status().ToString().c_str());
    return r;
  }
  ckpt::Writer final_ref, final_rec;
  reference.Checkpoint(final_ref);
  recovered.Checkpoint(final_rec);
  r.verified = final_ref.buffer() == final_rec.buffer() &&
               recovered.num_matches() == reference.num_matches();
  if (!r.verified) {
    std::fprintf(stderr,
                 "%s: recovered run diverged from the uninterrupted run "
                 "(%zu vs %zu final bytes, %lld vs %lld matches)\n",
                 name.c_str(), final_rec.buffer().size(),
                 final_ref.buffer().size(),
                 static_cast<long long>(recovered.num_matches()),
                 static_cast<long long>(reference.num_matches()));
  }
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"tpstream-bench-durability-v1\",\n"
               "  \"runs\": {\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"events\": %lld,\n"
                 "      \"events_per_sec\": %.1f,\n",
                 r.name.c_str(), static_cast<long long>(r.events),
                 r.events_per_sec);
    switch (r.kind) {
      case RunResult::kAppend:
        std::fprintf(f,
                     "      \"batches\": %lld,\n"
                     "      \"fsyncs\": %lld,\n"
                     "      \"appended_bytes\": %lld,\n"
                     "      \"replay_verified\": %d\n",
                     static_cast<long long>(r.batches),
                     static_cast<long long>(r.fsyncs),
                     static_cast<long long>(r.appended_bytes),
                     r.verified ? 1 : 0);
        break;
      case RunResult::kRecovery:
        std::fprintf(f,
                     "      \"recovery_ms\": %.3f,\n"
                     "      \"replayed_events\": %lld,\n"
                     "      \"replay_verified\": %d\n",
                     r.recovery_ms, static_cast<long long>(r.replayed_events),
                     r.verified ? 1 : 0);
        break;
      case RunResult::kIncremental:
        std::fprintf(f,
                     "      \"checkpoints\": %lld,\n"
                     "      \"full_checkpoints\": %lld,\n"
                     "      \"delta_checkpoints\": %lld,\n"
                     "      \"bytes_per_full\": %.1f,\n"
                     "      \"bytes_per_delta\": %.1f,\n"
                     "      \"restore_verified\": %d\n",
                     static_cast<long long>(r.checkpoints),
                     static_cast<long long>(r.full_checkpoints),
                     static_cast<long long>(r.delta_checkpoints),
                     r.bytes_per_full, r.bytes_per_delta, r.verified ? 1 : 0);
        break;
    }
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t append_events = flags.GetInt("events", 200000);
  const int64_t batch = flags.GetInt("batch", 64);
  const int64_t interval = flags.GetInt("interval", 5000);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int num_keys = static_cast<int>(flags.GetInt("keys", 4096));

  // Best-of-N to shed scheduler noise; every repeat's durability proof
  // must hold, so a single failed verification aborts.
  bool verified = true;
  auto best_of = [&](auto run_once) {
    RunResult best;
    for (int i = 0; i < repeats; ++i) {
      RunResult r = run_once();
      verified = verified && r.verified;
      if (i == 0 || r.events_per_sec > best.events_per_sec) {
        best = std::move(r);
      }
    }
    return best;
  };

  const std::vector<Event> stream = MakeStream(append_events, num_keys);
  std::vector<RunResult> runs;

  log::SyncPolicy every_record;
  every_record.mode = log::SyncMode::kEveryRecord;
  runs.push_back(best_of(
      [&] { return RunAppend("append.every_record", every_record, stream,
                             batch); }));
  log::SyncPolicy every_64k;
  every_64k.mode = log::SyncMode::kEveryBytes;
  every_64k.sync_bytes = 64 * 1024;
  runs.push_back(best_of(
      [&] { return RunAppend("append.every_64k", every_64k, stream, batch); }));
  log::SyncPolicy by_interval;
  by_interval.mode = log::SyncMode::kInterval;
  by_interval.sync_interval_ns = 5'000'000;
  runs.push_back(best_of(
      [&] { return RunAppend("append.interval", by_interval, stream, batch); }));

  runs.push_back(best_of(
      [&] { return RunRecovery("recovery.n10000",
                               MakeStream(10000, num_keys)); }));
  runs.push_back(best_of(
      [&] { return RunRecovery("recovery.n100000",
                               MakeStream(100000, num_keys)); }));

  runs.push_back(best_of(
      [&] { return RunIncremental("incremental.k8", stream, interval); }));

  std::printf("%-20s %9s %12s %8s %10s %12s %12s %s\n", "run", "events",
              "evt/s", "fsyncs", "rec ms", "bytes/full", "bytes/delta",
              "verified");
  for (const RunResult& r : runs) {
    std::printf("%-20s %9lld %12.0f %8lld %10.2f %12.0f %12.0f %s\n",
                r.name.c_str(), static_cast<long long>(r.events),
                r.events_per_sec, static_cast<long long>(r.fsyncs),
                r.recovery_ms, r.bytes_per_full, r.bytes_per_delta,
                r.verified ? "yes" : "NO");
  }
  if (!verified) return 1;

  const std::string json = flags.GetString("json", "");
  if (!json.empty() && !WriteJson(json, runs)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) {
  return tpstream::bench::Main(argc, argv);
}
