// Figure 8(a): quality of the optimizer's initial plans for Q1-Q3
// (Section 6.4.1). All six valid evaluation orders of each query are
// executed with a pinned order; the throughput of the best and worst
// order is compared with the one the cost model suggests from the
// Table 3 selectivities.
// Flags: --events=N --window=SECONDS
#include <cstdio>

#include "bench/bench_util.h"
#include "core/operator.h"
#include "optimizer/plan_optimizer.h"

namespace tpstream {
namespace bench {
namespace {

struct Query {
  const char* name;
  TemporalPattern pattern;
};

std::vector<Query> MakeQueries() {
  TemporalPattern q1({"A", "B", "C"});
  (void)q1.AddRelation(0, Relation::kOverlaps, 1);
  (void)q1.AddRelation(0, Relation::kOverlaps, 2);
  (void)q1.AddRelation(1, Relation::kStarts, 2);

  TemporalPattern q2({"A", "B", "C"});
  (void)q2.AddRelation(0, Relation::kOverlaps, 1);
  (void)q2.AddRelation(0, Relation::kBefore, 2);
  (void)q2.AddRelation(1, Relation::kOverlaps, 2);

  TemporalPattern q3({"A", "B", "C"});
  (void)q3.AddRelation(0, Relation::kBefore, 1);
  (void)q3.AddRelation(0, Relation::kBefore, 2);
  (void)q3.AddRelation(1, Relation::kBefore, 2);

  std::vector<Query> out;
  out.push_back(Query{"Q1", std::move(q1)});
  out.push_back(Query{"Q2", std::move(q2)});
  out.push_back(Query{"Q3", std::move(q3)});
  return out;
}

std::string OrderString(const TemporalPattern& p,
                        const std::vector<int>& order) {
  std::string s;
  for (int sym : order) {
    if (!s.empty()) s += ">";
    s += p.symbol_names()[sym];
  }
  return s;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 500000);
  const Duration window = flags.GetInt("window", 2000);
  // Best-of-N damps scheduler noise on shared machines.
  const int reps = static_cast<int>(flags.GetInt("reps", 3));

  std::printf(
      "# Figure 8(a): initial plan quality, synthetic events=%lld,\n"
      "# window=%lld s\n"
      "# columns: query  order  kevents_s  marker\n",
      static_cast<long long>(events), static_cast<long long>(window));

  for (Query& query : MakeQueries()) {
    PlanOptimizer optimizer(&query.pattern);
    MatcherStats initial_stats(query.pattern, 0.01);
    const std::vector<int> suggested = optimizer.BestOrder(initial_stats);

    SyntheticGenerator::Options gopts;
    gopts.num_streams = 3;
    const double gen_ms = TimeMs([&] {
      SyntheticGenerator gen(gopts);
      for (int64_t i = 0; i < events; ++i) gen.Next();
    });

    struct Row {
      std::vector<int> order;
      double throughput = 0;
    };
    std::vector<Row> rows;
    for (const std::vector<int>& order : optimizer.EnumerateOrders()) {
      double best_ms = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        QuerySpec spec = SyntheticSpec(3, query.pattern, window);
        TPStreamOperator::Options options;
        options.fixed_order = order;
        TPStreamOperator op(spec, options, nullptr);
        SyntheticGenerator gen(gopts);
        const double ms = std::max(
            TimeMs([&] {
              for (int64_t i = 0; i < events; ++i) op.Push(gen.Next());
            }) - gen_ms,
            0.001);
        best_ms = std::min(best_ms, ms);
      }
      rows.push_back(Row{order, events / best_ms});
    }

    double best = 0;
    double worst = 1e300;
    for (const Row& row : rows) {
      best = std::max(best, row.throughput);
      worst = std::min(worst, row.throughput);
    }
    for (const Row& row : rows) {
      std::string marker;
      if (row.throughput == best) marker += " best";
      if (row.throughput == worst) marker += " worst";
      if (row.order == suggested) marker += " <-suggested";
      std::printf("%-4s  %-8s %10.0f%s\n", query.name,
                  OrderString(query.pattern, row.order).c_str(),
                  row.throughput, marker.c_str());
      std::fflush(stdout);
    }
  }
  std::printf(
      "# expected shape (paper): the suggested plan is the best (Q1, Q2) "
      "or\n# within noise of the best (Q3).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
