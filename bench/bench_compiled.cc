// Compiled-predicate ablation backing BENCH_compiled.json: one Deriver
// with a battery of mixed-shape DEFINE predicates (comparison chains,
// AND/OR short-circuits, arithmetic, a duplicated predicate exercising
// the program cache) driven over the same event stream three ways:
//
//   deriver.interpreter            Expression::Eval per (event, definition)
//   deriver.bytecode               BytecodeProgram::Run per (event, def)
//   deriver.bytecode_batch         PushBatch-style: PrepareBatch()
//                                  evaluates each distinct program
//                                  columnarly over the whole chunk at the
//                                  machine's best SIMD tier, Process()
//                                  consumes precomputed selection bitmaps
//   deriver.bytecode_batch_scalar  same, pinned to TPSTREAM_SIMD=off —
//                                  isolates the SIMD kernels' contribution
//                                  from the SoA/batch restructuring
//
// The workload is derivation-bound by construction — predicates flip
// rarely, so situation/matcher work is negligible and events/sec measures
// predicate evaluation almost purely. Every run must derive the identical
// situation stream (checksummed); a divergence aborts the bench, so the
// measured fast path is also a correctness check.
//
// `--json=FILE` writes a "tpstream-bench-compiled-v2" document, the input
// of cmake/check_bench_regression.cmake and the format of the committed
// BENCH_compiled.json baseline. v2 adds a top-level "cpus" count and a
// per-run "simd_level" ("off"/"sse2"/"avx2"), which the gate uses to
// apply SIMD-dependent floors only on machines that actually have the
// kernels. The gate enforces per-run throughput floors plus the headline
// invariant, computed from the fresh document alone:
// eps(deriver.bytecode_batch) >= eps(deriver.interpreter) * 2.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "derive/deriver.h"
#include "expr/expression.h"

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Schema: speed, accel, load (double); lane, zone (int).
constexpr int kSpeed = 0;
constexpr int kAccel = 1;
constexpr int kLoad = 2;
constexpr int kLane = 3;
constexpr int kZone = 4;

/// Sixteen predicates spanning the shapes the compiler lowers
/// differently: single comparisons, comparison chains under AND/OR
/// (short-circuit jumps), arithmetic subtrees (widening, division),
/// unary negation, one exact duplicate (S0/S7) so the fingerprint-keyed
/// program cache is on the measured path, and four derived-quantity
/// predicates (S12-S15: energy, quadratic deviation, unit conversions)
/// whose deeper trees are where tree-walking overhead concentrates.
std::vector<SituationDefinition> Definitions() {
  auto speed = [] { return FieldRef(kSpeed, "speed"); };
  auto accel = [] { return FieldRef(kAccel, "accel"); };
  auto load = [] { return FieldRef(kLoad, "load"); };
  auto lane = [] { return FieldRef(kLane, "lane"); };
  auto zone = [] { return FieldRef(kZone, "zone"); };
  std::vector<ExprPtr> preds = {
      Gt(speed(), Literal(95.0)),
      And(Gt(speed(), Literal(80.0)), Gt(accel(), Literal(1.5))),
      Gt(Binary(BinaryOp::kMul, speed(), Literal(0.44704)),
         Binary(BinaryOp::kSub, load(), Literal(5.0))),
      Or(Eq(lane(), Literal(int64_t{7})), Eq(lane(), Literal(int64_t{9}))),
      Not(Lt(accel(), Literal(-8.0))),
      Gt(Binary(BinaryOp::kDiv, speed(),
                Binary(BinaryOp::kAdd, accel(), Literal(12.0))),
         Literal(30.0)),
      Ge(Binary(BinaryOp::kSub,
                Binary(BinaryOp::kAdd, speed(),
                       Binary(BinaryOp::kMul, accel(), Literal(2.0))),
         Literal(1.0)),
         Literal(110.0)),
      Gt(speed(), Literal(95.0)),  // duplicate of S0: shares its program
      And(Binary(BinaryOp::kNe, zone(), Literal(int64_t{0})),
          Gt(speed(), Literal(90.0))),
      Gt(Negate(accel()), Literal(6.0)),
      Gt(speed(), Binary(BinaryOp::kAdd, load(), Literal(70.0))),
      Or(And(Gt(speed(), Literal(85.0)), Eq(lane(), Literal(int64_t{1}))),
         Gt(speed(), Literal(99.0))),
      // Kinetic-energy-style derived quantity: 0.5 * m * v^2 scaled.
      Gt(Binary(BinaryOp::kAdd,
                Binary(BinaryOp::kDiv,
                       Binary(BinaryOp::kMul,
                              Binary(BinaryOp::kMul, Literal(0.5), load()),
                              Binary(BinaryOp::kMul, speed(), speed())),
                       Literal(1000.0)),
                Binary(BinaryOp::kMul, load(),
                       Binary(BinaryOp::kMul, Literal(9.81),
                              Literal(0.02)))),
         Literal(40.0)),
      // Quadratic deviation from cruise: (v-60)^2 + 25*a^2.
      Gt(Binary(BinaryOp::kAdd,
                Binary(BinaryOp::kMul,
                       Binary(BinaryOp::kSub, speed(), Literal(60.0)),
                       Binary(BinaryOp::kSub, speed(), Literal(60.0))),
                Binary(BinaryOp::kMul,
                       Binary(BinaryOp::kMul, accel(), accel()),
                       Literal(25.0))),
         Literal(900.0)),
      // Rational form with a guarded denominator.
      Gt(Binary(BinaryOp::kDiv,
                Binary(BinaryOp::kSub,
                       Binary(BinaryOp::kMul, speed(), speed()),
                       Binary(BinaryOp::kMul,
                              Binary(BinaryOp::kMul, Literal(2.0), accel()),
                              load())),
                Binary(BinaryOp::kAdd, load(), Literal(1.0))),
         Literal(250.0)),
      // Unit-converted linear blend under a range check.
      And(Gt(Binary(BinaryOp::kSub,
                    Binary(BinaryOp::kAdd,
                           Binary(BinaryOp::kMul, speed(), Literal(0.277)),
                           Binary(BinaryOp::kMul, accel(), Literal(1.5))),
                    Binary(BinaryOp::kMul, load(), Literal(0.1))),
             Literal(20.0)),
          Gt(load(), Literal(5.0))),
  };
  std::vector<SituationDefinition> defs;
  defs.reserve(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    defs.emplace_back("S" + std::to_string(i), std::move(preds[i]));
  }
  return defs;
}

/// Piecewise-smooth signals: values drift slowly and cross the predicate
/// thresholds rarely, keeping situation boundaries (and thus non-predicate
/// work) sparse — the stream is derivation-bound.
std::vector<Event> MakeWorkload(TimePoint horizon, uint64_t seed) {
  std::vector<Event> events;
  events.reserve(horizon);
  uint64_t s = seed;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  double speed = 60.0;
  double accel = 0.0;
  double load = 10.0;
  int64_t lane = 2;
  int64_t zone = 1;
  for (TimePoint t = 1; t <= horizon; ++t) {
    accel += (static_cast<double>(next() % 2001) - 1000.0) * 1e-3;
    if (accel > 10.0) accel = 10.0;
    if (accel < -10.0) accel = -10.0;
    speed += accel * 0.05;
    if (speed > 120.0) speed = 120.0;
    if (speed < 0.0) speed = 0.0;
    if (next() % 997 == 0) lane = static_cast<int64_t>(next() % 10);
    if (next() % 1499 == 0) zone = static_cast<int64_t>(next() % 4);
    load += (static_cast<double>(next() % 201) - 100.0) * 1e-3;
    events.push_back(Event({Value(speed), Value(accel), Value(load),
                            Value(lane), Value(zone)},
                           t));
  }
  return events;
}

struct RunResult {
  std::string name;
  int64_t events = 0;
  int definitions = 0;
  int compiled_programs = 0;
  double elapsed_s = 0;
  double events_per_sec = 0;
  int64_t situations = 0;
  uint64_t checksum = 0;
  double speedup_vs_interpreter = 1.0;
  std::string simd_level = "off";
};

enum class Mode { kInterpreter, kBytecode, kBytecodeBatch };

RunResult Run(const std::string& name, Mode mode,
              const std::vector<Event>& events, size_t batch_size,
              const std::string& simd) {
  DeriveOptions options;
  options.compiled_predicates = mode != Mode::kInterpreter;
  options.simd = simd;
  Deriver deriver(Definitions(), /*announce_starts=*/true,
                  /*metrics=*/nullptr, options);

  int64_t situations = 0;
  uint64_t checksum = 0;
  const int64_t start = NowNs();
  if (mode == Mode::kBytecodeBatch) {
    for (size_t i = 0; i < events.size(); i += batch_size) {
      const size_t n = std::min(batch_size, events.size() - i);
      const std::span<const Event> chunk(events.data() + i, n);
      deriver.PrepareBatch(chunk);
      for (const Event& e : chunk) {
        Deriver::Update& u = deriver.Process(e);
        situations += static_cast<int64_t>(u.started.size() +
                                           u.finished.size());
        for (const SymbolSituation& f : u.finished) {
          checksum = checksum * 1099511628211ull ^
                     (static_cast<uint64_t>(f.symbol) * 131 +
                      static_cast<uint64_t>(f.situation.ts));
        }
      }
    }
  } else {
    for (const Event& e : events) {
      Deriver::Update& u = deriver.Process(e);
      situations +=
          static_cast<int64_t>(u.started.size() + u.finished.size());
      for (const SymbolSituation& f : u.finished) {
        checksum = checksum * 1099511628211ull ^
                   (static_cast<uint64_t>(f.symbol) * 131 +
                    static_cast<uint64_t>(f.situation.ts));
      }
    }
  }
  const int64_t elapsed = NowNs() - start;

  RunResult r;
  r.name = name;
  r.events = static_cast<int64_t>(events.size());
  r.definitions = deriver.num_definitions();
  r.compiled_programs = deriver.num_compiled_programs();
  r.elapsed_s = static_cast<double>(elapsed) * 1e-9;
  r.events_per_sec = static_cast<double>(events.size()) / r.elapsed_s;
  r.situations = situations;
  r.checksum = checksum;
  // Per-tuple modes never touch the columnar kernels; only the batch
  // mode reports the dispatched tier.
  r.simd_level = mode == Mode::kBytecodeBatch ? deriver.simd_level() : "off";
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"tpstream-bench-compiled-v2\",\n"
               "  \"cpus\": %u,\n"
               "  \"runs\": {\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"events\": %lld,\n"
                 "      \"definitions\": %d,\n"
                 "      \"compiled_programs\": %d,\n"
                 "      \"simd_level\": \"%s\",\n"
                 "      \"elapsed_s\": %.6f,\n"
                 "      \"events_per_sec\": %.1f,\n"
                 "      \"situations\": %lld,\n"
                 "      \"speedup_vs_interpreter\": %.3f\n"
                 "    }%s\n",
                 r.name.c_str(), static_cast<long long>(r.events),
                 r.definitions, r.compiled_programs, r.simd_level.c_str(),
                 r.elapsed_s, r.events_per_sec,
                 static_cast<long long>(r.situations),
                 r.speedup_vs_interpreter, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const TimePoint horizon = flags.GetInt("horizon", 2000000);
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 512));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  const std::vector<Event> events = MakeWorkload(horizon, 1234577);

  // Best-of-N to shed scheduler noise on shared CI machines; the
  // situation checksum must be identical across every run and mode.
  auto best_of = [&](const std::string& name, Mode mode,
                     const std::string& simd) {
    RunResult best;
    for (int i = 0; i < repeats; ++i) {
      RunResult r = Run(name, mode, events, batch, simd);
      if (i == 0 || r.events_per_sec > best.events_per_sec) {
        best = std::move(r);
      }
    }
    return best;
  };

  std::vector<RunResult> runs;
  runs.push_back(best_of("deriver.interpreter", Mode::kInterpreter, ""));
  runs.push_back(best_of("deriver.bytecode", Mode::kBytecode, ""));
  runs.push_back(
      best_of("deriver.bytecode_batch", Mode::kBytecodeBatch, "native"));
  runs.push_back(best_of("deriver.bytecode_batch_scalar",
                         Mode::kBytecodeBatch, "off"));

  for (const RunResult& r : runs) {
    if (r.situations != runs[0].situations ||
        r.checksum != runs[0].checksum) {
      std::fprintf(stderr,
                   "%s diverged from the interpreter: %lld situations "
                   "(checksum %llx) vs %lld (%llx)\n",
                   r.name.c_str(), static_cast<long long>(r.situations),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<long long>(runs[0].situations),
                   static_cast<unsigned long long>(runs[0].checksum));
      return 1;
    }
  }
  for (RunResult& r : runs) {
    r.speedup_vs_interpreter = r.events_per_sec / runs[0].events_per_sec;
  }

  std::printf("%-30s %9s %12s %10s %6s %5s %9s\n", "run", "events",
              "evt/s", "situations", "progs", "simd", "speedup");
  for (const RunResult& r : runs) {
    std::printf("%-30s %9lld %12.0f %10lld %6d %5s %8.2fx\n",
                r.name.c_str(), static_cast<long long>(r.events),
                r.events_per_sec, static_cast<long long>(r.situations),
                r.compiled_programs, r.simd_level.c_str(),
                r.speedup_vs_interpreter);
  }

  const std::string json = flags.GetString("json", "");
  if (!json.empty() && !WriteJson(json, runs)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Main(argc, argv); }
