// Parallel-scaling benchmark backing BENCH_parallel.json: sweeps worker
// counts over a keyed workload in two flavors — match-heavy (frequent
// phase flips, so the sharded output path carries real traffic) and
// match-light (rare flips, so routing + detection dominate) — and
// reports events/sec, speedup and scaling efficiency vs the 1-worker
// run, backpressure counters (ring_full / merge_stalls), producer-side
// allocations per event (must be ~0 in steady state: the recycled batch
// ring keeps the hot path allocation-free), and the wall-clock latency
// distribution of individual Push() calls.
//
// `--json=FILE` writes a "tpstream-bench-parallel-v1" document, the
// input of cmake/check_bench_regression.cmake and the format of the
// committed BENCH_parallel.json baseline. The document records the
// machine's hardware concurrency: the regression checker only enforces
// scaling floors when enough cores are actually available.
//
// This file DEFINES replacement global operator new/delete (to count
// producer-thread heap allocations on the measured path), so it must not
// be linked together with another translation unit that does the same
// (bench/ingest_common.h).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"

std::atomic<int64_t> g_allocs_total{0};
thread_local int64_t t_allocs_this_thread = 0;

namespace {
void* CountedAlloc(std::size_t size) {
  g_allocs_total.fetch_add(1, std::memory_order_relaxed);
  ++t_allocs_this_thread;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The keyed two-situation query of the parallel test suite: A (flag
/// high) meets/before B (flag low) within 200 ticks, partitioned by key.
QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(200)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "query build failed: %s\n",
                 spec.status().ToString().c_str());
    std::exit(1);
  }
  return spec.value();
}

/// Round-robin keyed boolean phases: every tick emits one event per key;
/// `flip_prob` controls how often a key's flag toggles, i.e. how
/// match-heavy the stream is. Timestamps are strictly increasing per key.
std::vector<Event> KeyedWorkload(int keys, int64_t total_events,
                                 double flip_prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  std::bernoulli_distribution flip(flip_prob);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(total_events));
  TimePoint t = 0;
  while (static_cast<int64_t>(events.size()) < total_events) {
    ++t;
    for (int k = 0; k < keys && static_cast<int64_t>(events.size()) <
                                    total_events;
         ++k) {
      if (flip(rng)) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

struct ScalingMeasurement {
  int workers = 0;
  int64_t events = 0;
  int64_t warmup_events = 0;
  double elapsed_s = 0;
  double events_per_sec = 0;
  double speedup_vs_w1 = 1.0;
  double scaling_efficiency = 1.0;
  int64_t matches = 0;
  int64_t ring_full = 0;
  int64_t merge_stalls = 0;
  int64_t free_ring_allocs = 0;
  int64_t producer_allocs = 0;
  double producer_allocs_per_event = 0;
  obs::HistogramSnapshot push_ns;
};

/// One sweep run: warmup segment, measured segment (throughput = pushes +
/// final Flush, producer-thread allocations counted), then a latency
/// segment timing individual Push() calls (kept separate so the clock
/// reads do not distort the throughput number).
ScalingMeasurement RunOnce(const QuerySpec& spec,
                           const std::vector<Event>& events, int workers,
                           size_t batch_size, size_t ring_capacity,
                           int64_t warmup_events, int64_t measured_events,
                           int64_t latency_events) {
  ScalingMeasurement m;
  m.workers = workers;
  m.warmup_events = warmup_events;
  m.events = measured_events;

  parallel::ParallelTPStream::Options options;
  options.num_workers = workers;
  options.batch_size = batch_size;
  options.ring_capacity = ring_capacity;
  std::atomic<int64_t> delivered{0};
  parallel::ParallelTPStream op(
      spec, options,
      [&delivered](const Event&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });

  const Event* cursor = events.data();
  // Warmup: partitions materialize, every circulating batch vector and
  // event payload reaches its steady-state capacity.
  for (int64_t i = 0; i < warmup_events; ++i) op.Push(*cursor++);
  op.Flush();

  const int64_t allocs_before = t_allocs_this_thread;
  const int64_t t0 = NowNs();
  for (int64_t i = 0; i < measured_events; ++i) op.Push(*cursor++);
  op.Flush();
  const int64_t t1 = NowNs();
  m.producer_allocs = t_allocs_this_thread - allocs_before;

  m.elapsed_s = static_cast<double>(t1 - t0) * 1e-9;
  m.events_per_sec = m.elapsed_s > 0
                         ? static_cast<double>(measured_events) / m.elapsed_s
                         : 0;
  m.producer_allocs_per_event = static_cast<double>(m.producer_allocs) /
                                static_cast<double>(measured_events);

  obs::LatencyHistogram hist;
  for (int64_t i = 0; i < latency_events; ++i) {
    const int64_t start = NowNs();
    op.Push(*cursor++);
    hist.Record(NowNs() - start);
  }
  op.Flush();
  m.push_ns = hist.Snapshot();

  const obs::MetricsSnapshot metrics = op.Metrics();
  m.matches = op.num_matches();
  m.ring_full = metrics.counters.at("parallel.ring_full");
  m.merge_stalls = metrics.counters.at("parallel.merge_stalls");
  m.free_ring_allocs = metrics.counters.at("parallel.free_ring_allocs");
  if (delivered.load() != m.matches) {
    std::fprintf(stderr, "match delivery mismatch: %lld delivered vs %lld\n",
                 static_cast<long long>(delivered.load()),
                 static_cast<long long>(m.matches));
    std::exit(1);
  }
  return m;
}

bool WriteParallelJson(
    const std::string& path, int cpus,
    const std::vector<std::pair<std::string, ScalingMeasurement>>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"tpstream-bench-parallel-v1\",\n"
               "  \"cpus\": %d,\n  \"runs\": {\n",
               cpus);
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScalingMeasurement& m = runs[i].second;
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"workers\": %d,\n"
        "      \"events\": %lld,\n"
        "      \"warmup_events\": %lld,\n"
        "      \"elapsed_s\": %.6f,\n"
        "      \"events_per_sec\": %.1f,\n"
        "      \"speedup_vs_w1\": %.4f,\n"
        "      \"scaling_efficiency\": %.4f,\n"
        "      \"matches\": %lld,\n"
        "      \"ring_full\": %lld,\n"
        "      \"merge_stalls\": %lld,\n"
        "      \"free_ring_allocs\": %lld,\n"
        "      \"producer_allocs\": %lld,\n"
        "      \"producer_allocs_per_event\": %.6f,\n"
        "      \"push_ns\": {\"count\": %lld, \"p50\": %lld, \"p95\": %lld, "
        "\"p99\": %lld, \"max\": %lld}\n"
        "    }%s\n",
        runs[i].first.c_str(), m.workers, static_cast<long long>(m.events),
        static_cast<long long>(m.warmup_events), m.elapsed_s,
        m.events_per_sec, m.speedup_vs_w1, m.scaling_efficiency,
        static_cast<long long>(m.matches),
        static_cast<long long>(m.ring_full),
        static_cast<long long>(m.merge_stalls),
        static_cast<long long>(m.free_ring_allocs),
        static_cast<long long>(m.producer_allocs),
        m.producer_allocs_per_event,
        static_cast<long long>(m.push_ns.count),
        static_cast<long long>(m.push_ns.Quantile(50)),
        static_cast<long long>(m.push_ns.Quantile(95)),
        static_cast<long long>(m.push_ns.Quantile(99)),
        static_cast<long long>(m.push_ns.max),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("# parallel JSON written to %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int keys = static_cast<int>(flags.GetInt("keys", 64));
  const size_t batch_size =
      static_cast<size_t>(flags.GetInt("batch", 256));
  const size_t ring_capacity =
      static_cast<size_t>(flags.GetInt("ring", 8));
  const int64_t warmup = flags.GetInt("warmup", 100000);
  const int64_t measured = flags.GetInt("events", 1000000);
  const int64_t latency = flags.GetInt("latency-events", 100000);
  const int cpus =
      static_cast<int>(std::thread::hardware_concurrency());

  std::vector<int> worker_counts;
  {
    const std::string spec = flags.GetString("workers", "1,2,4,8");
    size_t pos = 0;
    while (pos < spec.size()) {
      worker_counts.push_back(std::atoi(spec.c_str() + pos));
      const size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const QuerySpec spec = KeyedSpec();
  struct Profile {
    const char* name;
    double flip_prob;
  };
  // 0.35 flips => a situation boundary every ~3 ticks per key (match-
  // heavy: the output path carries a large fraction of the traffic);
  // 0.01 => matches are two orders of magnitude rarer.
  const Profile profiles[] = {{"match_heavy", 0.35}, {"match_light", 0.01}};

  std::printf("# bench_parallel_scaling: keys=%d batch=%zu ring=%zu "
              "warmup=%lld measured=%lld latency=%lld cpus=%d\n",
              keys, batch_size, ring_capacity,
              static_cast<long long>(warmup),
              static_cast<long long>(measured),
              static_cast<long long>(latency), cpus);

  std::vector<std::pair<std::string, ScalingMeasurement>> runs;
  for (const Profile& profile : profiles) {
    const std::vector<Event> events = KeyedWorkload(
        keys, warmup + measured + latency, profile.flip_prob, 42);
    double w1_eps = 0;
    for (const int workers : worker_counts) {
      ScalingMeasurement m =
          RunOnce(spec, events, workers, batch_size, ring_capacity, warmup,
                  measured, latency);
      if (workers == 1 || w1_eps == 0) w1_eps = m.events_per_sec;
      m.speedup_vs_w1 = w1_eps > 0 ? m.events_per_sec / w1_eps : 0;
      m.scaling_efficiency =
          workers > 0 ? m.speedup_vs_w1 / static_cast<double>(workers) : 0;
      std::printf(
          "# %-12s w=%d  evt/s=%-12.0f speedup=%-6.2f eff=%-5.2f "
          "matches=%-8lld ring_full=%-6lld alloc/evt=%-8.4f "
          "push_ns{p50=%lld p99=%lld}\n",
          profile.name, workers, m.events_per_sec, m.speedup_vs_w1,
          m.scaling_efficiency, static_cast<long long>(m.matches),
          static_cast<long long>(m.ring_full), m.producer_allocs_per_event,
          static_cast<long long>(m.push_ns.Quantile(50)),
          static_cast<long long>(m.push_ns.Quantile(99)));
      runs.emplace_back(
          std::string(profile.name) + ".w" + std::to_string(workers),
          std::move(m));
    }
  }

  const std::string json = flags.GetString("json", "");
  if (!json.empty() && !WriteParallelJson(json, cpus, runs)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) {
  return tpstream::bench::Main(argc, argv);
}
