// Figure 7(b): average wall-clock result latency under maximum input rate
// as a function of the window size (Section 6.3.2). At max rate the
// application-time trigger gap converts to wall time via the measured
// per-event cost.
// Flags: --events=N --max-window=SECONDS --metrics-json=FILE
#include "bench/latency_common.h"

namespace tpstream {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 1000000);
  const Duration max_window = flags.GetInt("max-window", 100000);

  std::printf(
      "# Figure 7(b): wall-clock latency per result at max rate,\n"
      "# events=%lld, pattern A before B overlaps C\n"
      "# columns: window_s  system  matches  avg_latency_ms "
      "(processing + event-gap at max rate)  p50/p95/p99_processing_us\n",
      static_cast<long long>(events));
  obs::MetricsSnapshot merged;

  std::vector<Duration> windows;
  for (Duration w = 500; w <= max_window; w *= 5) windows.push_back(w);
  if (windows.back() != max_window) windows.push_back(max_window);

  for (Duration window : windows) {
    for (const bool iseq : {false, true}) {
      const LatencyRun run = iseq ? MeasureIseq(events, window)
                                  : MeasureTpstream(events, window);
      // At max rate, one application second passes in wall_ms / events ms.
      const double ms_per_tick = run.wall_ms / run.events_pushed;
      const double latency_ms =
          run.avg_processing_ms + run.avg_event_gap_s * ms_per_tick;
      const obs::HistogramSnapshot processing = run.processing_us();
      std::printf("%8lld  %-9s %10lld %14.4f  %6lld/%6lld/%6lld\n",
                  static_cast<long long>(window), iseq ? "iseq" : "tpstream",
                  static_cast<long long>(run.matches), latency_ms,
                  static_cast<long long>(processing.Quantile(50)),
                  static_cast<long long>(processing.Quantile(95)),
                  static_cast<long long>(processing.Quantile(99)));
      std::fflush(stdout);
      if (!iseq) merged.Merge(run.metrics);
    }
  }
  std::printf(
      "# expected shape (paper): latency grows with the window for both;\n"
      "# tpstream stays clearly below iseq (cheaper evaluation + no "
      "trigger gap).\n");
  MaybeWriteMetricsJson(flags, merged);  // tpstream runs, all windows
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
