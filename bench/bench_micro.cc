// Micro-benchmarks (google-benchmark) for the performance-critical
// building blocks: deriver, situation buffer range queries, the join core
// and the NFA substrate.
#include <benchmark/benchmark.h>

#include <random>

#include "cep/nfa.h"
#include "derive/deriver.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/matcher.h"
#include "matcher/situation_buffer.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace {

void BM_DeriverThroughput(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  SyntheticGenerator::Options gopts;
  gopts.num_streams = num_streams;
  SyntheticGenerator gen(gopts);
  std::vector<SituationDefinition> defs;
  for (int i = 0; i < num_streams; ++i) {
    defs.emplace_back("S" + std::to_string(i), FieldRef(i));
  }
  Deriver deriver(defs, /*announce_starts=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deriver.Process(gen.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeriverThroughput)->Arg(1)->Arg(4)->Arg(10);

void BM_BufferRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SituationBuffer buffer;
  TimePoint t = 0;
  std::mt19937_64 rng(1);
  for (int i = 0; i < n; ++i) {
    const TimePoint ts = t + 1 + static_cast<TimePoint>(rng() % 20);
    const TimePoint te = ts + 1 + static_cast<TimePoint>(rng() % 50);
    buffer.Append(Situation({}, ts, te));
    t = te;
  }
  const Situation probe({}, t / 2, t / 2 + 40);
  for (auto _ : state) {
    const auto bounds =
        BoundsForCounterpart(Relation::kBefore, probe, /*fixed_is_a=*/false);
    benchmark::DoNotOptimize(buffer.Find(*bounds));
  }
}
BENCHMARK(BM_BufferRangeQuery)->Arg(1000)->Arg(100000);

void BM_BufferAppendPurge(benchmark::State& state) {
  SituationBuffer buffer;
  TimePoint t = 0;
  for (auto _ : state) {
    buffer.Append(Situation({}, t, t + 5));
    buffer.PurgeBefore(t - 1000);
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferAppendPurge);

void BM_MatcherUpdate(benchmark::State& state) {
  // A before B on steadily arriving situations with a sliding window.
  TemporalPattern p({"A", "B"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  Matcher matcher(p, 2000, [](const Match&) {});
  TimePoint t = 0;
  int sym = 0;
  for (auto _ : state) {
    t += 17;
    matcher.Update({{sym, Situation({}, t, t + 9)}}, t + 9);
    sym ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatcherUpdate);

void BM_LowLatencyUpdate(benchmark::State& state) {
  TemporalPattern p({"A", "B"});
  (void)p.AddRelation(0, Relation::kOverlaps, 1);
  DetectionAnalysis analysis(p, std::vector<DurationConstraint>(2));
  LowLatencyMatcher matcher(p, analysis, 2000, [](const Match&) {});
  TimePoint t = 0;
  int sym = 0;
  for (auto _ : state) {
    t += 17;
    Situation ongoing({}, t, kTimeUnknown);
    matcher.Update({}, {{sym, Situation({}, t - 20, t)}}, t);
    matcher.Update({{sym ^ 1, ongoing}}, {}, t);
    sym ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LowLatencyUpdate);

void BM_NfaPush(benchmark::State& state) {
  cep::CepPattern p;
  const ExprPtr flag = FieldRef(0);
  p.steps.push_back(cep::PatternStep{"pre", Not(flag), false, {}});
  p.steps.push_back(cep::PatternStep{"body", flag, true, {}});
  p.steps.push_back(cep::PatternStep{"post", Not(flag), false, {}});
  cep::NfaEngine engine(p, nullptr);
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 1;
  SyntheticGenerator gen(gopts);
  for (auto _ : state) {
    engine.Push(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NfaPush);

void BM_ExpressionEval(benchmark::State& state) {
  // The speeding predicate of Listing 1.
  const ExprPtr pred = Gt(FieldRef(1, "speed"), Literal(70.0));
  const Tuple tuple = {Value(int64_t{7}), Value(82.0), Value(0.4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*pred, tuple));
  }
}
BENCHMARK(BM_ExpressionEval);

}  // namespace
}  // namespace tpstream

BENCHMARK_MAIN();
