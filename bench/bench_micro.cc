// Micro-benchmarks (google-benchmark) for the performance-critical
// building blocks: deriver, situation buffer range queries, the join core
// and the NFA substrate.
//
// `--metrics-json=FILE` (handled before google-benchmark sees the args)
// skips the benchmarks and instead runs a small fully instrumented
// workload, dumping the registry snapshot as JSON — the smoke input for
// cmake/check_metrics_json.cmake in CI.
//
// `--ingest-json=FILE` likewise skips the benchmarks and measures
// steady-state sequential ingestion (per-event Push and PushBatch) on the
// allocation-free profile, emitting a "tpstream-bench-ingest-v1" JSON
// document that CI compares against the committed BENCH_ingest.json via
// cmake/check_bench_regression.cmake. Optional knobs: --events=N
// --warmup=N --latency-events=N.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/ingest_common.h"
#include "cep/nfa.h"
#include "core/operator.h"
#include "derive/deriver.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/matcher.h"
#include "matcher/situation_buffer.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace {

void BM_DeriverThroughput(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  SyntheticGenerator::Options gopts;
  gopts.num_streams = num_streams;
  SyntheticGenerator gen(gopts);
  std::vector<SituationDefinition> defs;
  for (int i = 0; i < num_streams; ++i) {
    defs.emplace_back("S" + std::to_string(i), FieldRef(i));
  }
  Deriver deriver(defs, /*announce_starts=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deriver.Process(gen.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeriverThroughput)->Arg(1)->Arg(4)->Arg(10);

void BM_BufferRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SituationBuffer buffer;
  TimePoint t = 0;
  std::mt19937_64 rng(1);
  for (int i = 0; i < n; ++i) {
    const TimePoint ts = t + 1 + static_cast<TimePoint>(rng() % 20);
    const TimePoint te = ts + 1 + static_cast<TimePoint>(rng() % 50);
    buffer.Append(Situation({}, ts, te));
    t = te;
  }
  const Situation probe({}, t / 2, t / 2 + 40);
  for (auto _ : state) {
    const auto bounds =
        BoundsForCounterpart(Relation::kBefore, probe, /*fixed_is_a=*/false);
    benchmark::DoNotOptimize(buffer.Find(*bounds));
  }
}
BENCHMARK(BM_BufferRangeQuery)->Arg(1000)->Arg(100000);

void BM_BufferAppendPurge(benchmark::State& state) {
  SituationBuffer buffer;
  TimePoint t = 0;
  for (auto _ : state) {
    buffer.Append(Situation({}, t, t + 5));
    buffer.PurgeBefore(t - 1000);
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferAppendPurge);

void BM_MatcherUpdate(benchmark::State& state) {
  // A before B on steadily arriving situations with a sliding window.
  TemporalPattern p({"A", "B"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  Matcher matcher(p, 2000, [](const Match&) {});
  TimePoint t = 0;
  int sym = 0;
  for (auto _ : state) {
    t += 17;
    matcher.Update({{sym, Situation({}, t, t + 9)}}, t + 9);
    sym ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatcherUpdate);

void BM_LowLatencyUpdate(benchmark::State& state) {
  TemporalPattern p({"A", "B"});
  (void)p.AddRelation(0, Relation::kOverlaps, 1);
  DetectionAnalysis analysis(p, std::vector<DurationConstraint>(2));
  LowLatencyMatcher matcher(p, analysis, 2000, [](const Match&) {});
  TimePoint t = 0;
  int sym = 0;
  for (auto _ : state) {
    t += 17;
    Situation ongoing({}, t, kTimeUnknown);
    matcher.Update({}, {{sym, Situation({}, t - 20, t)}}, t);
    matcher.Update({{sym ^ 1, ongoing}}, {}, t);
    sym ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LowLatencyUpdate);

void BM_NfaPush(benchmark::State& state) {
  cep::CepPattern p;
  const ExprPtr flag = FieldRef(0);
  p.steps.push_back(cep::PatternStep{"pre", Not(flag), false, {}});
  p.steps.push_back(cep::PatternStep{"body", flag, true, {}});
  p.steps.push_back(cep::PatternStep{"post", Not(flag), false, {}});
  cep::NfaEngine engine(p, nullptr);
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 1;
  SyntheticGenerator gen(gopts);
  for (auto _ : state) {
    engine.Push(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NfaPush);

void BM_ExpressionEval(benchmark::State& state) {
  // The speeding predicate of Listing 1.
  const ExprPtr pred = Gt(FieldRef(1, "speed"), Literal(70.0));
  const Tuple tuple = {Value(int64_t{7}), Value(82.0), Value(0.4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*pred, tuple));
  }
}
BENCHMARK(BM_ExpressionEval);

int RunMetricsSmoke(const std::string& path) {
  // Small instrumented end-to-end run: the full operator stack on the
  // Figure 7 pattern, every metric live.
  TemporalPattern pattern({"A", "B", "C"});
  (void)pattern.AddRelation(0, Relation::kBefore, 1);
  (void)pattern.AddRelation(1, Relation::kOverlaps, 2);
  obs::MetricsRegistry registry;
  TPStreamOperator::Options options;
  options.metrics = &registry;
  TPStreamOperator op(bench::SyntheticSpec(3, pattern, /*window=*/5000),
                      options, nullptr);
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;
  SyntheticGenerator gen(gopts);
  for (int i = 0; i < 20000; ++i) op.Push(gen.Next());

  const std::string json = registry.Snapshot().ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("metrics JSON (%zu bytes, %lld matches) written to %s\n",
              json.size(), static_cast<long long>(op.num_matches()),
              path.c_str());
  return 0;
}

int RunIngestBench(const bench::Flags& flags) {
  const int64_t events = flags.GetInt("events", 1000000);
  const int64_t warmup = flags.GetInt("warmup", 50000);
  const int64_t latency_events = flags.GetInt("latency-events", 200000);

  // The allocation-free profile (see tests/ingest_test.cc): connected
  // "A before B" on two boolean streams, no aggregates, no metrics, no
  // adaptive re-planning (the controller's re-optimization allocates).
  TemporalPattern pattern({"A", "B"});
  (void)pattern.AddRelation(0, Relation::kBefore, 1);
  const QuerySpec spec = bench::SyntheticSpec(2, pattern, /*window=*/150);
  TPStreamOperator::Options options;
  options.adaptive = false;

  std::vector<std::pair<std::string, bench::IngestMeasurement>> runs;
  {
    TPStreamOperator op(spec, options, /*output=*/nullptr);
    SyntheticGenerator gen({.num_streams = 2, .seed = 9});
    runs.emplace_back("micro_push", bench::MeasureIngest(
                                        op, gen, warmup, events,
                                        latency_events));
  }
  {
    TPStreamOperator op(spec, options, /*output=*/nullptr);
    SyntheticGenerator gen({.num_streams = 2, .seed = 9});
    runs.emplace_back("micro_push_batch",
                      bench::MeasureIngest(op, gen, warmup, events,
                                           latency_events,
                                           /*batch_size=*/256));
  }
  for (const auto& [name, m] : runs) {
    bench::PrintIngestLine(name.c_str(), m);
  }
  return bench::WriteIngestJson(flags.GetString("ingest-json", ""), runs)
             ? 0
             : 1;
}

}  // namespace
}  // namespace tpstream

int main(int argc, char** argv) {
  // Intercept --metrics-json / --ingest-json before benchmark::Initialize
  // (which rejects flags it does not know).
  const tpstream::bench::Flags flags(argc, argv);
  if (flags.Has("ingest-json")) return tpstream::RunIngestBench(flags);
  constexpr const char kFlag[] = "--metrics-json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return tpstream::RunMetricsSmoke(argv[i] + sizeof(kFlag) - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
