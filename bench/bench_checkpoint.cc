// Checkpoint cost benchmark backing BENCH_checkpoint.json: drives the
// single-stream and partitioned operators over a random-walk sensor
// stream, taking a checkpoint every --interval events, and measures what
// durability costs the hot path:
//
//   operator.steady    TPStreamOperator, one stream, periodic checkpoints
//   partitioned.k64    PartitionedTPStream over 64 partition keys
//
// Reported per run: sustained events/sec (checkpoint pauses included),
// mean serialized bytes per checkpoint, and the checkpoint pause
// distribution (p50/p95/p99/max, in ns) — the stall a caller sees when a
// checkpoint is taken between two Push() calls.
//
// Each run also proves its checkpoints are usable: the mid-stream blob is
// restored into a fresh engine, the tail of the stream replayed, and the
// final re-checkpoint compared byte-for-byte against the uninterrupted
// run's. A divergence aborts the bench (exit 1), so the measured fast
// path doubles as a recovery correctness check; the JSON records it as
// "restore_verified": 1.
//
// `--json=FILE` writes a "tpstream-bench-checkpoint-v1" document, the
// input of cmake/check_bench_regression.cmake and the format of the
// committed BENCH_checkpoint.json baseline. The gate enforces per-run
// throughput floors, a pause-p99 bound, a bytes-per-checkpoint ceiling,
// and that restore_verified is set in the fresh document.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "query/builder.h"

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

QuerySpec CheckpointSpec(bool partitioned) {
  Schema schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    std::abort();
  }
  return spec.value();
}

std::vector<Event> MakeStream(int64_t n, int num_keys) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  // Deterministic xorshift random walk (same stream on every machine).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto uni = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  double speed = 0.5, temp = 0.5;
  for (int64_t i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni() - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni() - 0.5) * 0.4, 0.0, 1.0);
    // Keys are assigned in blocks of 16 consecutive ticks so a partition
    // sees contiguous sub-streams (per-event striping would leave every
    // partition's events further apart than the query window).
    events.push_back(Event({Value(speed), Value(temp),
                            Value(static_cast<int64_t>((i / 16) % num_keys))},
                           static_cast<TimePoint>(i + 1)));
  }
  return events;
}

struct RunResult {
  std::string name;
  int64_t events = 0;
  int64_t matches = 0;
  int64_t checkpoints = 0;
  double events_per_sec = 0;
  double bytes_per_checkpoint = 0;
  double pause_p50 = 0, pause_p95 = 0, pause_p99 = 0, pause_max = 0;
  bool restore_verified = false;
};

/// Runs one engine over `events` with a checkpoint every `interval`
/// events, then proves recovery: the checkpoint taken at the midpoint is
/// restored into `recovered` and the tail replayed; both engines must
/// re-checkpoint byte-identically at the end.
template <typename Engine>
RunResult Run(const std::string& name, Engine& engine, Engine& recovered,
              const std::vector<Event>& events, int64_t interval) {
  RunResult r;
  r.name = name;
  r.events = static_cast<int64_t>(events.size());

  std::vector<double> pauses;
  int64_t total_bytes = 0;
  std::string mid_blob;
  const size_t midpoint = events.size() / 2;

  const int64_t start = NowNs();
  for (size_t i = 0; i < events.size(); ++i) {
    engine.Push(events[i]);
    if ((static_cast<int64_t>(i) + 1) % interval == 0 ||
        i + 1 == midpoint) {
      const int64_t t0 = NowNs();
      ckpt::Writer w;
      engine.Checkpoint(w);
      pauses.push_back(static_cast<double>(NowNs() - t0));
      total_bytes += static_cast<int64_t>(w.buffer().size());
      ++r.checkpoints;
      if (i + 1 == midpoint) mid_blob = w.Take();
    }
  }
  const double elapsed_s = static_cast<double>(NowNs() - start) * 1e-9;

  r.matches = engine.num_matches();
  r.events_per_sec = static_cast<double>(events.size()) / elapsed_s;
  r.bytes_per_checkpoint =
      r.checkpoints == 0
          ? 0.0
          : static_cast<double>(total_bytes) / static_cast<double>(r.checkpoints);
  r.pause_p50 = Percentile(pauses, 50);
  r.pause_p95 = Percentile(pauses, 95);
  r.pause_p99 = Percentile(pauses, 99);
  r.pause_max = pauses.empty() ? 0.0 : *std::max_element(pauses.begin(),
                                                         pauses.end());

  // Recovery differential: restore the midpoint blob, replay the tail,
  // compare final checkpoints byte for byte.
  ckpt::Reader reader(mid_blob);
  uint64_t offset = 0;
  const Status status = recovered.Restore(reader, &offset);
  if (!status.ok() || offset != midpoint) {
    std::fprintf(stderr, "%s: restore failed: %s (offset %llu)\n",
                 name.c_str(), status.ToString().c_str(),
                 static_cast<unsigned long long>(offset));
    return r;
  }
  for (size_t i = midpoint; i < events.size(); ++i) {
    recovered.Push(events[i]);
  }
  ckpt::Writer final_ref, final_rec;
  engine.Checkpoint(final_ref);
  recovered.Checkpoint(final_rec);
  r.restore_verified = final_ref.buffer() == final_rec.buffer() &&
                       recovered.num_matches() == engine.num_matches();
  if (!r.restore_verified) {
    std::fprintf(stderr,
                 "%s: recovered run diverged from the uninterrupted run "
                 "(%zu vs %zu final bytes, %lld vs %lld matches)\n",
                 name.c_str(), final_rec.buffer().size(),
                 final_ref.buffer().size(),
                 static_cast<long long>(recovered.num_matches()),
                 static_cast<long long>(engine.num_matches()));
  }
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"tpstream-bench-checkpoint-v1\",\n"
               "  \"runs\": {\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"events\": %lld,\n"
                 "      \"matches\": %lld,\n"
                 "      \"checkpoints\": %lld,\n"
                 "      \"events_per_sec\": %.1f,\n"
                 "      \"bytes_per_checkpoint\": %.1f,\n"
                 "      \"restore_verified\": %d,\n"
                 "      \"pause_ns\": {\n"
                 "        \"p50\": %.0f,\n"
                 "        \"p95\": %.0f,\n"
                 "        \"p99\": %.0f,\n"
                 "        \"max\": %.0f\n"
                 "      }\n"
                 "    }%s\n",
                 r.name.c_str(), static_cast<long long>(r.events),
                 static_cast<long long>(r.matches),
                 static_cast<long long>(r.checkpoints), r.events_per_sec,
                 r.bytes_per_checkpoint, r.restore_verified ? 1 : 0,
                 r.pause_p50, r.pause_p95, r.pause_p99, r.pause_max,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t horizon = flags.GetInt("events", 1000000);
  const int64_t interval = flags.GetInt("interval", 50000);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int num_keys = static_cast<int>(flags.GetInt("keys", 64));

  // Best-of-N to shed scheduler noise; the restore differential must
  // hold on every repeat, so a single failed verification aborts.
  bool verified = true;
  auto best_of = [&](const std::string& name, auto make_engine) {
    RunResult best;
    for (int i = 0; i < repeats; ++i) {
      auto engine = make_engine();
      auto recovered = make_engine();
      RunResult r = Run(name, *engine, *recovered,
                        MakeStream(horizon, num_keys), interval);
      verified = verified && r.restore_verified;
      if (i == 0 || r.events_per_sec > best.events_per_sec) {
        best = std::move(r);
      }
    }
    return best;
  };

  const QuerySpec flat_spec = CheckpointSpec(/*partitioned=*/false);
  const QuerySpec part_spec = CheckpointSpec(/*partitioned=*/true);
  std::vector<RunResult> runs;
  runs.push_back(best_of("operator.steady", [&] {
    return std::make_unique<TPStreamOperator>(flat_spec,
                                              TPStreamOperator::Options{},
                                              nullptr);
  }));
  runs.push_back(best_of("partitioned.k64", [&] {
    return std::make_unique<PartitionedTPStream>(
        part_spec, TPStreamOperator::Options{}, nullptr);
  }));

  std::printf("%-18s %9s %8s %12s %10s %9s %9s %9s %s\n", "run", "events",
              "ckpts", "evt/s", "bytes/ckpt", "p50 ns", "p99 ns", "max ns",
              "verified");
  for (const RunResult& r : runs) {
    std::printf("%-18s %9lld %8lld %12.0f %10.0f %9.0f %9.0f %9.0f %s\n",
                r.name.c_str(), static_cast<long long>(r.events),
                static_cast<long long>(r.checkpoints), r.events_per_sec,
                r.bytes_per_checkpoint, r.pause_p50, r.pause_p99,
                r.pause_max, r.restore_verified ? "yes" : "NO");
  }
  if (!verified) return 1;

  const std::string json = flags.GetString("json", "");
  if (!json.empty() && !WriteJson(json, runs)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) {
  return tpstream::bench::Main(argc, argv);
}
