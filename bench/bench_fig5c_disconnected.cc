// Figure 5(c): processing time and state size for the disconnected
// (highly selective) pattern "A before B overlaps C" as a function of the
// window size (Section 6.2.2). Synthetic boolean streams, default 3M
// events (the paper used 300M on a workstation).
// Flags: --events=N --max-window=SECONDS --strawman-cap=SECONDS
#include <cstdio>

#include "baselines/iseq.h"
#include "baselines/strawman.h"
#include "bench/bench_util.h"
#include "core/operator.h"

namespace tpstream {
namespace bench {
namespace {

TemporalPattern DisconnectedPattern() {
  TemporalPattern p({"A", "B", "C"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  (void)p.AddRelation(1, Relation::kOverlaps, 2);
  return p;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 3000000);
  const Duration max_window = flags.GetInt("max-window", 100000);
  // The paper reports Esper barely managing windows up to 20,000 s; the
  // nested-loop straw man blows up the same way, so cap it by default.
  const Duration strawman_cap = flags.GetInt("strawman-cap", 5000);

  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;

  std::printf(
      "# Figure 5(c): disconnected pattern A before B overlaps C\n"
      "# events=%lld\n"
      "# columns: window_s  system  time_ms  kevents_s  matches  "
      "avg_buffered\n",
      static_cast<long long>(events));

  std::vector<Duration> windows;
  for (Duration w = 500; w <= max_window; w *= 5) windows.push_back(w);
  if (windows.back() != max_window) windows.push_back(max_window);

  for (Duration window : windows) {
    double gen_ms = TimeMs([&] {
      SyntheticGenerator gen(gopts);
      for (int64_t i = 0; i < events; ++i) gen.Next();
    });

    auto report = [&](const char* name, double total_ms, int64_t matches,
                      double avg_buffered) {
      const double ms = std::max(total_ms - gen_ms, 0.001);
      std::printf("%8lld  %-10s %12.1f %10.0f %12lld %12.0f\n",
                  static_cast<long long>(window), name, ms, events / ms,
                  static_cast<long long>(matches), avg_buffered);
      std::fflush(stdout);
    };

    // State size is sampled every 64k events (the paper sampled the JVM
    // heap at 20 Hz; buffered situations/events are our state proxy).
    constexpr int64_t kSampleEvery = 1 << 16;

    {
      QuerySpec spec = SyntheticSpec(3, DisconnectedPattern(), window);
      TPStreamOperator op(spec, {}, nullptr);
      SyntheticGenerator gen(gopts);
      double buffered_sum = 0;
      int64_t samples = 0;
      const double ms = TimeMs([&] {
        for (int64_t i = 0; i < events; ++i) {
          op.Push(gen.Next());
          if (i % kSampleEvery == 0) {
            buffered_sum += static_cast<double>(op.BufferedCount());
            ++samples;
          }
        }
      });
      report("tpstream", ms, op.num_matches(), buffered_sum / samples);
    }
    {
      IseqOperator op(SyntheticDefinitions(3), DisconnectedPattern(), window,
                      nullptr);
      SyntheticGenerator gen(gopts);
      double buffered_sum = 0;
      int64_t samples = 0;
      const double ms = TimeMs([&] {
        for (int64_t i = 0; i < events; ++i) {
          op.Push(gen.Next());
          if (i % kSampleEvery == 0) {
            buffered_sum += static_cast<double>(op.BufferedCount());
            ++samples;
          }
        }
      });
      report("iseq", ms, op.num_matches(), buffered_sum / samples);
    }
    if (window <= strawman_cap) {
      TwoPhaseMatcher op(SyntheticDefinitions(3), DisconnectedPattern(),
                         window, nullptr);
      SyntheticGenerator gen(gopts);
      double buffered_sum = 0;
      int64_t samples = 0;
      const double ms = TimeMs([&] {
        for (int64_t i = 0; i < events; ++i) {
          op.Push(gen.Next());
          if (i % kSampleEvery == 0) {
            buffered_sum += static_cast<double>(op.BufferedCount());
            ++samples;
          }
        }
      });
      report("esper1", ms, op.num_matches(), buffered_sum / samples);
    } else {
      std::printf("%8lld  %-10s %12s\n", static_cast<long long>(window),
                  "esper1", "dnf");
    }
  }
  std::printf(
      "# expected shape (paper): tpstream beats iseq increasingly with the\n"
      "# window (14x at 100k s); the straw man does not finish large\n"
      "# windows; tpstream/iseq state stays nearly flat, straw man's "
      "grows.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
