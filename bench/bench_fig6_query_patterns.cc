// Figure 6: TPStream processing time for the five generic query shapes
// (Equal, Meets, Chain, Star, Combined) with 4-10 situation streams
// (Section 6.2.3). Reports the median and the 25th/75th percentiles over
// the configured number of runs; Chain/Star/Combined draw their temporal
// relations at random per run, as in the paper.
// Flags: --events=N --runs=N --window=SECONDS --max-streams=N
#include <cstdio>
#include <random>

#include "bench/bench_util.h"
#include "core/operator.h"

namespace tpstream {
namespace bench {
namespace {

enum class Shape { kEqual, kMeets, kChain, kStar, kCombined };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kEqual:
      return "equal";
    case Shape::kMeets:
      return "meets";
    case Shape::kChain:
      return "chain";
    case Shape::kStar:
      return "star";
    case Shape::kCombined:
      return "combined";
  }
  return "?";
}

Relation RandomRelation(std::mt19937_64& rng) {
  return static_cast<Relation>(rng() % kNumRelations);
}

TemporalPattern MakePattern(Shape shape, int n, std::mt19937_64& rng) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("S" + std::to_string(i));
  TemporalPattern p(names);
  switch (shape) {
    case Shape::kEqual:
      for (int i = 0; i + 1 < n; ++i) {
        (void)p.AddRelation(i, Relation::kEquals, i + 1);
      }
      break;
    case Shape::kMeets:
      for (int i = 0; i + 1 < n; ++i) {
        (void)p.AddRelation(i, Relation::kMeets, i + 1);
      }
      break;
    case Shape::kChain:
      for (int i = 0; i + 1 < n; ++i) {
        (void)p.AddRelation(i, RandomRelation(rng), i + 1);
      }
      break;
    case Shape::kStar:
      for (int i = 1; i < n; ++i) {
        (void)p.AddRelation(0, RandomRelation(rng), i);
      }
      break;
    case Shape::kCombined: {
      const int half = n / 2;
      for (int i = 0; i + 1 < half; ++i) {
        (void)p.AddRelation(i, RandomRelation(rng), i + 1);
      }
      for (int i = half; i < n; ++i) {
        (void)p.AddRelation(half - 1, RandomRelation(rng), i);
      }
      break;
    }
  }
  return p;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t events = flags.GetInt("events", 200000);
  const int runs = static_cast<int>(flags.GetInt("runs", 10));
  const Duration window = flags.GetInt("window", 2000);
  const int max_streams = static_cast<int>(flags.GetInt("max-streams", 10));

  std::printf(
      "# Figure 6: query shapes, %lld synthetic events/run, %d runs,\n"
      "# window %lld s\n"
      "# columns: shape  streams  p25_ms  median_ms  p75_ms  max_ms\n",
      static_cast<long long>(events), runs, static_cast<long long>(window));

  for (Shape shape : {Shape::kEqual, Shape::kMeets, Shape::kChain,
                      Shape::kStar, Shape::kCombined}) {
    for (int n = 4; n <= max_streams; n += 2) {
      std::vector<double> times;
      for (int run = 0; run < runs; ++run) {
        std::mt19937_64 rng(1000 * n + run);
        QuerySpec spec = SyntheticSpec(n, MakePattern(shape, n, rng), window);

        SyntheticGenerator::Options gopts;
        gopts.num_streams = n;
        gopts.seed = 77 + run;
        const double gen_ms = TimeMs([&] {
          SyntheticGenerator gen(gopts);
          for (int64_t i = 0; i < events; ++i) gen.Next();
        });

        TPStreamOperator op(spec, {}, nullptr);
        SyntheticGenerator gen(gopts);
        const double ms = TimeMs([&] {
          for (int64_t i = 0; i < events; ++i) op.Push(gen.Next());
        });
        times.push_back(std::max(ms - gen_ms, 0.001));
      }
      std::printf("%-9s %7d %9.1f %9.1f %9.1f %9.1f\n", ShapeName(shape), n,
                  Percentile(times, 25), Percentile(times, 50),
                  Percentile(times, 75), Percentile(times, 100));
      std::fflush(stdout);
    }
  }
  std::printf(
      "# expected shape (paper): medians grow roughly linearly with the\n"
      "# stream count; chain (before-heavy draws) and star incur the\n"
      "# largest maxima, equal/meets stay cheap.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
