// Multi-query scaling benchmark backing BENCH_multiquery.json: N standing
// queries over one stream, executed shared (one QueryGroup: deduplicated
// situation derivation, fan-out only on situation boundaries) versus
// unshared (N independent TPStreamOperators, each deriving every event).
// Sweeps N in {1, 100} for identical and distinct query mixes, plus
// N = 10000 identical where the shared engine is measured and the
// unshared side is extrapolated from the N = 100 run (unshared cost per
// input event is linear in N — running 10000 independent operators just
// to prove it would dominate CI time).
//
// The shared runs double as a correctness check: every query's match
// count must equal its unshared twin's (the differential suite pins the
// stronger byte-identical guarantee; here it guards the measured code
// path).
//
// `--json=FILE` writes a "tpstream-bench-multiquery-v1" document, the
// input of cmake/check_bench_regression.cmake and the format of the
// committed BENCH_multiquery.json baseline. The regression gate enforces
// per-run throughput floors plus the headline invariant: at N = 10000
// identical queries the shared engine must sustain >= 5x the unshared
// events/sec.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/operator.h"
#include "multi/query_group.h"
#include "query/builder.h"

namespace tpstream {
namespace bench {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Schema SensorSchema() {
  return Schema({Field{"flag_a", ValueType::kBool},
                 Field{"flag_b", ValueType::kBool},
                 Field{"level", ValueType::kDouble}});
}

/// Three-symbol query; `threshold` varies the B predicate, so a distinct
/// mix shares A and C across all queries but derives each B separately.
QuerySpec MakeSpec(double threshold) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", FieldRef(0, "flag_a"))
      .Define("B", Gt(FieldRef(2, "level"), Literal(threshold)))
      .Define("C", FieldRef(1, "flag_b"))
      .Relate("A", {Relation::kOverlaps, Relation::kMeets}, "B")
      .Relate("B", {Relation::kOverlaps, Relation::kBefore}, "C")
      .Within(64)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg", "B", AggKind::kAvg, "level");
  auto spec = qb.Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "query build failed: %s\n",
                 spec.status().ToString().c_str());
    std::exit(1);
  }
  return spec.value();
}

/// Piecewise-constant signals: flags flip and the level re-levels with
/// small probability per tick, so situation boundaries (the events that
/// trigger per-query fan-out work) stay sparse — the regime the shared
/// engine is built for. Every event still costs each UNSHARED operator a
/// full derivation pass, which is exactly the advantage under test. A
/// scripted A-B-C episode every 500 ticks guarantees real matches (and
/// match-path work) for every threshold in the sweep.
std::vector<Event> MakeWorkload(TimePoint horizon, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution flip(0.005);
  std::uniform_real_distribution<double> level(0.0, 10.0);
  bool a = false;
  bool b = false;
  double v = 5.0;
  std::vector<Event> events;
  events.reserve(horizon);
  for (TimePoint t = 1; t <= horizon; ++t) {
    if (flip(rng)) a = !a;
    if (flip(rng)) b = !b;
    if (flip(rng)) v = level(rng);
    const TimePoint phase = t % 500;
    const bool ep_a = phase >= 1 && phase < 9;
    const bool ep_b = phase >= 5 && phase < 15;
    const bool ep_c = phase >= 11 && phase < 21;
    events.push_back(Event({Value(a || ep_a), Value(b || ep_c),
                            Value(ep_b ? 10.9 : v)},
                           t));
  }
  return events;
}

std::vector<double> Thresholds(int n, bool identical) {
  std::vector<double> thresholds;
  thresholds.reserve(n);
  for (int i = 0; i < n; ++i) {
    thresholds.push_back(identical ? 5.0 : 0.5 + (i % 97) * 0.1);
  }
  return thresholds;
}

struct RunResult {
  std::string name;
  int queries = 0;
  int64_t events = 0;
  double elapsed_s = 0;
  double events_per_sec = 0;
  int64_t matches_q0 = 0;
  int distinct_definitions = 0;
  bool extrapolated = false;
  std::string extrapolated_from;
};

RunResult RunShared(const std::string& name,
                    const std::vector<double>& thresholds,
                    const std::vector<Event>& events) {
  multi::QueryGroup group;
  std::vector<int64_t> matches(thresholds.size(), 0);
  for (size_t i = 0; i < thresholds.size(); ++i) {
    auto id = group.AddQuery(MakeSpec(thresholds[i]),
                             [&matches, i](const Event&) { ++matches[i]; });
    if (!id.ok()) {
      std::fprintf(stderr, "AddQuery failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  group.Seal();  // keep construction out of the measured window

  const int64_t start = NowNs();
  for (const Event& e : events) group.Push(e);
  group.Flush();
  const int64_t elapsed = NowNs() - start;

  RunResult r;
  r.name = name;
  r.queries = static_cast<int>(thresholds.size());
  r.events = static_cast<int64_t>(events.size());
  r.elapsed_s = static_cast<double>(elapsed) * 1e-9;
  r.events_per_sec = static_cast<double>(events.size()) / r.elapsed_s;
  r.matches_q0 = matches[0];
  r.distinct_definitions = group.num_distinct_definitions();
  // Guard the measured path: every identical query must agree with
  // query 0 (the differential tests pin the stronger guarantee).
  for (size_t i = 1; i < thresholds.size(); ++i) {
    if (thresholds[i] == thresholds[0] && matches[i] != matches[0]) {
      std::fprintf(stderr, "%s: query %zu found %lld matches, query 0 %lld\n",
                   name.c_str(), i, static_cast<long long>(matches[i]),
                   static_cast<long long>(matches[0]));
      std::exit(1);
    }
  }
  return r;
}

RunResult RunUnshared(const std::string& name,
                      const std::vector<double>& thresholds,
                      const std::vector<Event>& events) {
  std::vector<int64_t> matches(thresholds.size(), 0);
  std::vector<std::unique_ptr<TPStreamOperator>> ops;
  ops.reserve(thresholds.size());
  for (size_t i = 0; i < thresholds.size(); ++i) {
    ops.push_back(std::make_unique<TPStreamOperator>(
        MakeSpec(thresholds[i]), TPStreamOperator::Options{},
        [&matches, i](const Event&) { ++matches[i]; }));
  }

  const int64_t start = NowNs();
  for (const Event& e : events) {
    for (auto& op : ops) op->Push(e);
  }
  for (auto& op : ops) op->Flush();
  const int64_t elapsed = NowNs() - start;

  RunResult r;
  r.name = name;
  r.queries = static_cast<int>(thresholds.size());
  r.events = static_cast<int64_t>(events.size());
  r.elapsed_s = static_cast<double>(elapsed) * 1e-9;
  r.events_per_sec = static_cast<double>(events.size()) / r.elapsed_s;
  r.matches_q0 = matches[0];
  // Each operator derives its query's full definition set.
  r.distinct_definitions = static_cast<int>(thresholds.size()) * 3;
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"tpstream-bench-multiquery-v1\",\n"
               "  \"runs\": {\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"queries\": %d,\n"
        "      \"events\": %lld,\n"
        "      \"elapsed_s\": %.6f,\n"
        "      \"events_per_sec\": %.1f,\n"
        "      \"matches_per_query\": %lld,\n"
        "      \"distinct_definitions\": %d,\n"
        "      \"extrapolated\": %s%s%s%s\n"
        "    }%s\n",
        r.name.c_str(), r.queries, static_cast<long long>(r.events),
        r.elapsed_s, r.events_per_sec,
        static_cast<long long>(r.matches_q0), r.distinct_definitions,
        r.extrapolated ? "true" : "false",
        r.extrapolated ? ",\n      \"extrapolated_from\": \"" : "",
        r.extrapolated ? r.extrapolated_from.c_str() : "",
        r.extrapolated ? "\"" : "", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Horizons sized so unshared N=100 and shared N=10000 each stay in
  // low single-digit seconds on a laptop-class core.
  const TimePoint h_small = flags.GetInt("horizon-small", 200000);
  const TimePoint h_mid = flags.GetInt("horizon-mid", 20000);

  std::vector<RunResult> runs;
  std::printf("%-28s %9s %8s %12s %10s %6s\n", "run", "queries", "events",
              "evt/s", "matches/q", "defs");
  auto report = [&](RunResult r) {
    std::printf("%-28s %9d %8lld %12.0f %10lld %6d%s\n", r.name.c_str(),
                r.queries, static_cast<long long>(r.events),
                r.events_per_sec, static_cast<long long>(r.matches_q0),
                r.distinct_definitions,
                r.extrapolated ? "  (extrapolated)" : "");
    runs.push_back(std::move(r));
  };

  const std::vector<Event> small = MakeWorkload(h_small, 41);
  // The N = 100 and N = 10000 configurations share one workload so the
  // extrapolated unshared run is commensurable with the measured shared
  // one.
  const std::vector<Event> mid = MakeWorkload(h_mid, 42);

  // N = 1: sharing must not tax the single-query path.
  report(RunShared("n1.identical.shared", Thresholds(1, true), small));
  report(RunUnshared("n1.identical.unshared", Thresholds(1, true), small));

  // N = 100, identical and distinct mixes, both sides measured.
  report(RunShared("n100.identical.shared", Thresholds(100, true), mid));
  report(
      RunUnshared("n100.identical.unshared", Thresholds(100, true), mid));
  report(RunShared("n100.distinct.shared", Thresholds(100, false), mid));
  report(
      RunUnshared("n100.distinct.unshared", Thresholds(100, false), mid));

  // Headline: N = 10000 identical. Shared is measured; unshared is
  // extrapolated from the N = 100 run (its per-input-event cost is
  // linear in N: every operator derives every event).
  report(
      RunShared("n10000.identical.shared", Thresholds(10000, true), mid));
  {
    const RunResult& base = runs[3];  // n100.identical.unshared
    RunResult r;
    r.name = "n10000.identical.unshared";
    r.queries = 10000;
    r.events = base.events;
    r.events_per_sec = base.events_per_sec * (100.0 / 10000.0);
    r.elapsed_s = static_cast<double>(r.events) / r.events_per_sec;
    r.matches_q0 = base.matches_q0;
    r.distinct_definitions = 10000 * 3;
    r.extrapolated = true;
    r.extrapolated_from = base.name;
    report(std::move(r));
  }

  const double shared_eps = runs[runs.size() - 2].events_per_sec;
  const double unshared_eps = runs.back().events_per_sec;
  std::printf("\nn10000 identical: shared %.0f evt/s vs unshared %.0f "
              "(extrapolated) — %.1fx\n",
              shared_eps, unshared_eps, shared_eps / unshared_eps);

  const std::string json = flags.GetString("json", "");
  if (!json.empty() && !WriteJson(json, runs)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Main(argc, argv); }
