// Figure 7(a): application-time latency gain of TPStream's low-latency
// matching over end-timestamp detection (ISEQ), per temporal relation and
// for duration ratios 2:1 .. 1:2 (A's average duration fixed at 55 s,
// Section 6.3.1). equals/finishes/finished-by are omitted: their matches
// only conclude at the common end (no gain possible).
// Besides the per-ratio averages, the per-relation gain distribution is
// recorded into obs::LatencyHistogram instances (fig7a.gain.<relation>)
// and a measured run reports the shared matcher.detection_latency
// histogram of real TPStream operators (low-latency vs baseline).
// Flags: --pairs=N --events=N --metrics-json=FILE
#include <cstdio>
#include <optional>
#include <random>

#include "algebra/detection.h"
#include "bench/bench_util.h"
#include "bench/latency_common.h"
#include "matcher/low_latency_matcher.h"
#include "obs/metrics.h"

namespace tpstream {
namespace bench {
namespace {

struct Pair {
  Situation a;
  Situation b;
};

// Constructs a pair satisfying `r` with the requested durations (both
// drawn beforehand). Returns nullopt when the durations cannot realize
// the relation (e.g. "A starts B" needs B longer than A).
std::optional<Pair> MakePair(Relation r, Duration dur_a, Duration dur_b,
                             std::mt19937_64& rng) {
  auto uniform = [&rng](Duration lo, Duration hi) {
    return std::uniform_int_distribution<Duration>(lo, hi)(rng);
  };
  const TimePoint ats = 1000 + uniform(0, 100);
  const TimePoint ate = ats + dur_a;
  TimePoint bts = 0;
  switch (r) {
    case Relation::kBefore:
      bts = ate + uniform(1, 20);
      break;
    case Relation::kMeets:
      bts = ate;
      break;
    case Relation::kOverlaps: {
      const Duration max_overlap = std::min(dur_a, dur_b) - 1;
      if (max_overlap < 1) return std::nullopt;
      bts = ate - uniform(1, max_overlap);
      break;
    }
    case Relation::kStarts:
      if (dur_b <= dur_a) return std::nullopt;
      bts = ats;
      break;
    case Relation::kDuring:  // B.ts < A.ts, A.te < B.te
      if (dur_b < dur_a + 2) return std::nullopt;
      bts = ats - uniform(1, dur_b - dur_a - 1);
      break;
    case Relation::kStartedBy:
      if (dur_b >= dur_a) return std::nullopt;
      bts = ats;
      break;
    case Relation::kContains:  // A.ts < B.ts, B.te < A.te
      if (dur_a < dur_b + 2) return std::nullopt;
      bts = ats + uniform(1, dur_a - dur_b - 1);
      break;
    case Relation::kOverlappedBy: {  // B.ts < A.ts < B.te < A.te
      const Duration max_overlap = std::min(dur_a, dur_b) - 1;
      if (max_overlap < 1) return std::nullopt;
      bts = ats - dur_b + uniform(1, max_overlap);
      break;
    }
    case Relation::kAfter:
      bts = ats - uniform(1, 20) - dur_b;
      break;
    case Relation::kMetBy:
      bts = ats - dur_b;
      break;
    default:
      return std::nullopt;
  }
  Pair pair{Situation({}, ats, ate), Situation({}, bts, bts + dur_b)};
  if (!Holds(r, pair.a, pair.b)) return std::nullopt;
  return pair;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = static_cast<int>(flags.GetInt("pairs", 5000));
  const int64_t events = flags.GetInt("events", 200000);

  obs::MetricsRegistry registry;
  obs::Counter* pairs_ctr = registry.GetCounter("fig7a.pairs");

  const Relation relations[] = {
      Relation::kBefore,       Relation::kMeets,   Relation::kOverlaps,
      Relation::kStarts,       Relation::kDuring,  Relation::kStartedBy,
      Relation::kContains,     Relation::kOverlappedBy,
      Relation::kAfter,        Relation::kMetBy,
  };
  const double ratios[] = {0.5, 0.75, 1.0, 1.5, 2.0};  // B : A

  std::printf(
      "# Figure 7(a): application-time latency gain (s) per relation,\n"
      "# avg over %d pairs; A duration ~ U[10,100] (mean 55)\n"
      "# columns: relation  then one column per B:A ratio\n"
      "%-14s", pairs, "relation");
  for (double ratio : ratios) std::printf("  B/A=%-5.2f", ratio);
  std::printf("\n");

  for (Relation r : relations) {
    TemporalPattern pattern({"A", "B"});
    (void)pattern.AddRelation(0, r, 1);
    obs::LatencyHistogram* gain_hist = registry.GetHistogram(
        std::string("fig7a.gain.") + RelationName(r));
    std::printf("%-14s", RelationName(r));
    for (double ratio : ratios) {
      std::mt19937_64 rng(17 + static_cast<int>(r) * 31 +
                          static_cast<int>(ratio * 100));
      const double avg_b = 55.0 * ratio;
      const Duration b_lo = std::max<Duration>(2, 10 * ratio);
      const Duration b_hi =
          std::max<Duration>(b_lo + 1, 2 * avg_b - b_lo);
      double gain_sum = 0;
      int count = 0;
      int attempts = 0;
      while (count < pairs && attempts < pairs * 20) {
        ++attempts;
        const Duration dur_a =
            std::uniform_int_distribution<Duration>(10, 100)(rng);
        const Duration dur_b =
            std::uniform_int_distribution<Duration>(b_lo, b_hi)(rng);
        const auto pair = MakePair(r, dur_a, dur_b, rng);
        if (!pair) continue;
        const std::vector<Situation> config = {pair->a, pair->b};
        const TimePoint td = EarliestDetection(pattern, config);
        const TimePoint baseline = std::max(pair->a.te, pair->b.te);
        gain_sum += static_cast<double>(baseline - td);
        gain_hist->Record(baseline - td);
        pairs_ctr->Inc();
        ++count;
      }
      std::printf("  %9.1f", count > 0 ? gain_sum / count : 0.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "# expected shape (paper): before/meets gain == B's average\n"
      "# duration (grows with the ratio); starts/overlaps/during detect at\n"
      "# A.te with during worst-case B.duration/2; mirror relations gain\n"
      "# the tail of A instead.\n");

  // Gain distributions across all ratios (one histogram per relation).
  std::printf("# gain distribution per relation (s, all ratios pooled):\n");
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& [name, hist] : snapshot.histograms) {
    PrintHistogramLine(name.c_str(), hist);
  }

  // Measured detection latency on real operators: the low-latency matcher
  // should pin matcher.detection_latency at ~0 ticks while the baseline
  // (end-timestamp) matcher pays the full trigger gap.
  std::printf(
      "# measured detection latency (matcher.detection_latency, app-time\n"
      "# ticks, %lld events, pattern A before B overlaps C):\n",
      static_cast<long long>(events));
  const LatencyRun ll_run = MeasureTpstream(events, /*window=*/100000);
  auto detection = [](const LatencyRun& run) {
    auto it = run.metrics.histograms.find("matcher.detection_latency");
    return it == run.metrics.histograms.end() ? obs::HistogramSnapshot{}
                                              : it->second;
  };
  PrintHistogramLine("tpstream low-latency", detection(ll_run));
  PrintHistogramLine("tpstream event gap", ll_run.event_gap_ticks());

  snapshot.Merge(ll_run.metrics);
  MaybeWriteMetricsJson(flags, snapshot);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
