#ifndef TPSTREAM_BENCH_INGEST_COMMON_H_
#define TPSTREAM_BENCH_INGEST_COMMON_H_

// Shared machinery for the ingestion benchmarks backing BENCH_ingest.json
// (events/sec, allocations/event, per-push wall latency percentiles).
//
// This header DEFINES the replacement global operator new/delete (to
// count heap allocations on the measured path), so it must be included
// from exactly ONE translation unit per binary — the benchmark's main
// .cc file.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/operator.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace bench {

std::atomic<size_t> g_ingest_alloc_count{0};

namespace ingest_internal {
inline void* CountedAlloc(std::size_t size) {
  g_ingest_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace ingest_internal

}  // namespace bench
}  // namespace tpstream

void* operator new(std::size_t size) {
  return tpstream::bench::ingest_internal::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return tpstream::bench::ingest_internal::CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpstream {
namespace bench {

/// One steady-state ingestion measurement (schema
/// "tpstream-bench-ingest-v1", see EXPERIMENTS.md).
struct IngestMeasurement {
  int64_t events = 0;         // measured events (throughput pass)
  int64_t warmup_events = 0;  // events pushed before measuring
  double elapsed_s = 0;
  double events_per_sec = 0;
  int64_t allocations = 0;  // operator new calls during the pass
  double allocations_per_event = 0;
  int64_t matches = 0;  // total operator matches after the run
  /// Wall latency of individual Push() calls in nanoseconds, recorded in
  /// a separate (smaller) pass so the clock reads do not distort the
  /// throughput number.
  obs::HistogramSnapshot push_ns;
};

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drives `op` from `gen` with a reused scratch Event. `batch_size == 0`
/// measures per-event Push(); otherwise events are staged into a reused
/// std::vector<Event> and handed over via PushBatch().
inline IngestMeasurement MeasureIngest(TPStreamOperator& op,
                                       SyntheticGenerator& gen,
                                       int64_t warmup_events,
                                       int64_t measured_events,
                                       int64_t latency_events,
                                       size_t batch_size = 0) {
  IngestMeasurement m;
  m.warmup_events = warmup_events;
  m.events = measured_events;

  std::vector<Event> batch(batch_size == 0 ? 1 : batch_size);
  auto drive = [&](int64_t count) {
    if (batch_size == 0) {
      Event& scratch = batch[0];
      for (int64_t i = 0; i < count; ++i) {
        gen.Next(&scratch);
        op.Push(scratch);
      }
      return;
    }
    for (int64_t pushed = 0; pushed < count;) {
      const size_t n = static_cast<size_t>(
          std::min<int64_t>(static_cast<int64_t>(batch_size), count - pushed));
      for (size_t i = 0; i < n; ++i) gen.Next(&batch[i]);
      op.PushBatch(std::span<Event>(batch.data(), n));
      pushed += static_cast<int64_t>(n);
    }
  };

  // Warmup: situation buffers reach their window-bounded capacity, all
  // scratch vectors stop growing.
  drive(warmup_events);

  // Pass 1: throughput and allocation count, no per-event clock reads.
  const size_t allocs_before =
      g_ingest_alloc_count.load(std::memory_order_relaxed);
  const int64_t t0 = NowNs();
  drive(measured_events);
  const int64_t t1 = NowNs();
  const size_t allocs_after =
      g_ingest_alloc_count.load(std::memory_order_relaxed);

  m.elapsed_s = static_cast<double>(t1 - t0) * 1e-9;
  m.events_per_sec =
      m.elapsed_s > 0 ? static_cast<double>(measured_events) / m.elapsed_s : 0;
  m.allocations = static_cast<int64_t>(allocs_after - allocs_before);
  m.allocations_per_event =
      static_cast<double>(m.allocations) / static_cast<double>(measured_events);

  // Pass 2: per-push wall latency (PR2 log-linear histogram).
  obs::LatencyHistogram hist;
  Event& scratch = batch[0];
  for (int64_t i = 0; i < latency_events; ++i) {
    gen.Next(&scratch);
    const int64_t start = NowNs();
    op.Push(scratch);
    hist.Record(NowNs() - start);
  }
  m.push_ns = hist.Snapshot();
  m.matches = op.num_matches();
  return m;
}

inline void PrintIngestLine(const char* label, const IngestMeasurement& m) {
  std::printf(
      "# %-20s events=%-9lld evt/s=%-12.0f alloc/evt=%-8.4f "
      "push_ns{p50=%lld p99=%lld max=%lld}\n",
      label, static_cast<long long>(m.events), m.events_per_sec,
      m.allocations_per_event, static_cast<long long>(m.push_ns.Quantile(50)),
      static_cast<long long>(m.push_ns.Quantile(99)),
      static_cast<long long>(m.push_ns.max));
}

/// Writes the named runs as a "tpstream-bench-ingest-v1" JSON document —
/// the input of cmake/check_bench_regression.cmake and the format of the
/// committed BENCH_ingest.json baseline.
inline bool WriteIngestJson(
    const std::string& path,
    const std::vector<std::pair<std::string, IngestMeasurement>>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"tpstream-bench-ingest-v1\",\n"
                  "  \"runs\": {\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const IngestMeasurement& m = runs[i].second;
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"events\": %lld,\n"
        "      \"warmup_events\": %lld,\n"
        "      \"elapsed_s\": %.6f,\n"
        "      \"events_per_sec\": %.1f,\n"
        "      \"allocations\": %lld,\n"
        "      \"allocations_per_event\": %.6f,\n"
        "      \"matches\": %lld,\n"
        "      \"push_ns\": {\"count\": %lld, \"p50\": %lld, \"p95\": %lld, "
        "\"p99\": %lld, \"max\": %lld}\n"
        "    }%s\n",
        runs[i].first.c_str(), static_cast<long long>(m.events),
        static_cast<long long>(m.warmup_events), m.elapsed_s,
        m.events_per_sec, static_cast<long long>(m.allocations),
        m.allocations_per_event, static_cast<long long>(m.matches),
        static_cast<long long>(m.push_ns.count),
        static_cast<long long>(m.push_ns.Quantile(50)),
        static_cast<long long>(m.push_ns.Quantile(95)),
        static_cast<long long>(m.push_ns.Quantile(99)),
        static_cast<long long>(m.push_ns.max),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("# ingest JSON written to %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace tpstream

#endif  // TPSTREAM_BENCH_INGEST_COMMON_H_
