#ifndef TPSTREAM_BENCH_BENCH_UTIL_H_
#define TPSTREAM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query_spec.h"
#include "obs/metrics.h"
#include "query/builder.h"
#include "workload/linear_road.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace bench {

/// Minimal --key=value flag parsing for the figure harnesses.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::unordered_map<std::string, std::string> values_;
};

/// One table line summarizing a latency histogram snapshot (application
/// or wall time; the unit is the caller's).
inline void PrintHistogramLine(const char* label,
                               const obs::HistogramSnapshot& h) {
  std::printf("# %-32s count=%-9lld p50=%-8lld p95=%-8lld p99=%-8lld "
              "max=%lld\n",
              label, static_cast<long long>(h.count),
              static_cast<long long>(h.Quantile(50)),
              static_cast<long long>(h.Quantile(95)),
              static_cast<long long>(h.Quantile(99)),
              static_cast<long long>(h.max));
}

/// Writes `snapshot` as JSON to the file named by --metrics-json, if the
/// flag was given (the machine-readable counterpart of the printed
/// tables; CI validates the schema with cmake/check_metrics_json.cmake).
inline bool MaybeWriteMetricsJson(const Flags& flags,
                                  const obs::MetricsSnapshot& snapshot) {
  const std::string path = flags.GetString("metrics-json", "");
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = snapshot.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("# metrics JSON written to %s\n", path.c_str());
  return true;
}

inline double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times fn() and returns elapsed milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const double start = NowMs();
  fn();
  return NowMs() - start;
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * (values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Routes events of an unpartitioned operator type by an integer key
/// field — used to give the baseline operators the same PARTITION BY
/// semantics the TPStream operator provides natively.
template <typename Op>
class PartitionedBy {
 public:
  PartitionedBy(int key_field, std::function<std::unique_ptr<Op>()> factory)
      : key_field_(key_field), factory_(std::move(factory)) {}

  void Push(const Event& e) {
    auto& slot = partitions_[e.payload[key_field_].AsInt()];
    if (slot == nullptr) slot = factory_();
    slot->Push(e);
  }

  int64_t num_matches() const {
    int64_t total = 0;
    for (const auto& [k, op] : partitions_) total += op->num_matches();
    return total;
  }
  size_t BufferedCount() const {
    size_t total = 0;
    for (const auto& [k, op] : partitions_) total += op->BufferedCount();
    return total;
  }

 private:
  int key_field_;
  std::function<std::unique_ptr<Op>()> factory_;
  std::unordered_map<int64_t, std::unique_ptr<Op>> partitions_;
};

/// Thresholds for the aggressive-driver query, calibrated like the paper
/// (Section 6.2.1): p99 of speed, p90 / p10 of acceleration.
struct DriverThresholds {
  double speed;
  double accel;
  double decel;
};

inline DriverThresholds CalibrateThresholds(
    const LinearRoadGenerator::Options& options, int sample = 50000) {
  // Like the paper: p99 of speed, p90 of the positive acceleration values
  // and p90 of the negative ones (in magnitude).
  LinearRoadGenerator gen(options);
  std::vector<double> speeds;
  std::vector<double> pos_accel;
  std::vector<double> neg_accel;
  for (int i = 0; i < sample; ++i) {
    const Event e = gen.Next();
    speeds.push_back(e.payload[LinearRoadGenerator::kSpeed].ToDouble());
    const double a = e.payload[LinearRoadGenerator::kAccel].ToDouble();
    if (a > 0) pos_accel.push_back(a);
    if (a < 0) neg_accel.push_back(-a);
  }
  return DriverThresholds{Percentile(speeds, 99.0),
                          Percentile(pos_accel, 90.0),
                          -Percentile(neg_accel, 90.0)};
}

/// Situation definitions of the aggressive-driver query (A acceleration,
/// B speeding, C deceleration), without duration constraints as in the
/// processing-time experiments of Section 6.2.1.
inline std::vector<SituationDefinition> DriverDefinitions(
    const Schema& schema, const DriverThresholds& thresholds) {
  const int speed = schema.IndexOf("speed");
  const int accel = schema.IndexOf("accel");
  return {
      SituationDefinition(
          "A", Gt(FieldRef(accel, "accel"), Literal(thresholds.accel))),
      SituationDefinition(
          "B", Gt(FieldRef(speed, "speed"), Literal(thresholds.speed))),
      SituationDefinition(
          "C", Lt(FieldRef(accel, "accel"), Literal(thresholds.decel))),
  };
}

/// The full aggressive-driver pattern (Listing 1) and the simplified
/// variant restricted to meets/overlaps (Section 6.2.1).
inline TemporalPattern DriverPattern(bool simplified) {
  TemporalPattern p({"A", "B", "C"});
  if (simplified) {
    (void)p.AddRelation(0, Relation::kMeets, 1);
    (void)p.AddRelation(0, Relation::kOverlaps, 1);
    (void)p.AddRelation(1, Relation::kMeets, 2);
    (void)p.AddRelation(1, Relation::kOverlaps, 2);
  } else {
    for (Relation r : {Relation::kMeets, Relation::kOverlaps,
                       Relation::kStarts, Relation::kDuring}) {
      (void)p.AddRelation(0, r, 1);
    }
    (void)p.AddRelation(2, Relation::kDuring, 1);
    for (Relation r :
         {Relation::kFinishes, Relation::kOverlaps, Relation::kMeets}) {
      (void)p.AddRelation(1, r, 2);
    }
    (void)p.AddRelation(0, Relation::kBefore, 2);
  }
  return p;
}

/// Boolean situation definitions s0..s(n-1) for the synthetic generator.
inline std::vector<SituationDefinition> SyntheticDefinitions(int n) {
  std::vector<SituationDefinition> defs;
  defs.reserve(n);
  for (int i = 0; i < n; ++i) {
    defs.emplace_back("S" + std::to_string(i),
                      FieldRef(i, "s" + std::to_string(i)));
  }
  return defs;
}

/// QuerySpec wrapper for matcher-only experiments on synthetic streams.
inline QuerySpec SyntheticSpec(int n, TemporalPattern pattern,
                               Duration window) {
  QuerySpec spec;
  std::vector<Field> fields;
  for (int i = 0; i < n; ++i) {
    fields.push_back(Field{"s" + std::to_string(i), ValueType::kBool});
  }
  spec.input_schema = Schema(fields);
  spec.definitions = SyntheticDefinitions(n);
  spec.pattern = std::move(pattern);
  spec.window = window;
  return spec;
}

}  // namespace bench
}  // namespace tpstream

#endif  // TPSTREAM_BENCH_BENCH_UTIL_H_
