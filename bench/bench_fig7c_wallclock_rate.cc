// Figure 7(c): result latency split into processing latency and event
// latency for event rates from 1M/s down to 1/s, window fixed
// (Section 6.3.2). Rates are virtual (DESIGN.md substitution 4): the
// processing latency is measured once at max rate, while the event
// latency converts the measured application-time trigger gap with the
// configured rate. At 1 event/s the gap equals application time, which is
// where ISEQ's event latency dominates and TPStream introduces none.
// Flags: --events=N --window=SECONDS --metrics-json=FILE
//
// `--ingest-json=FILE` skips the latency experiment and instead measures
// steady-state ingestion of the same disconnected pattern at max rate,
// emitting a "tpstream-bench-ingest-v1" document (run "fig7c_push") for
// cmake/check_bench_regression.cmake.
#include <utility>
#include <vector>

#include "bench/ingest_common.h"
#include "bench/latency_common.h"

namespace tpstream {
namespace bench {
namespace {

int RunIngest(const Flags& flags) {
  const int64_t events = flags.GetInt("events", 1000000);
  const Duration window = flags.GetInt("window", 100000);
  const QuerySpec spec = SyntheticSpec(3, LatencyPattern(), window);
  TPStreamOperator::Options options;
  options.adaptive = false;
  TPStreamOperator op(spec, options, /*output=*/nullptr);
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;
  SyntheticGenerator gen(gopts);
  std::vector<std::pair<std::string, IngestMeasurement>> runs;
  runs.emplace_back(
      "fig7c_push",
      MeasureIngest(op, gen, flags.GetInt("warmup", 50000), events,
                    flags.GetInt("latency-events", 200000)));
  PrintIngestLine("fig7c_push", runs.back().second);
  return WriteIngestJson(flags.GetString("ingest-json", ""), runs) ? 0 : 1;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("ingest-json")) return RunIngest(flags);
  const int64_t events = flags.GetInt("events", 1000000);
  const Duration window = flags.GetInt("window", 100000);

  std::printf(
      "# Figure 7(c): latency split at varying event rates, window=%lld s\n"
      "# events=%lld, pattern A before B overlaps C\n"
      "# columns: rate_evt_s  system  processing_ms  event_ms  total_ms\n",
      static_cast<long long>(window), static_cast<long long>(events));

  const LatencyRun tps = MeasureTpstream(events, window);
  const LatencyRun iseq = MeasureIseq(events, window);

  const double rates[] = {1e6, 1e4, 1e2, 1.0};
  for (double rate : rates) {
    auto report = [&](const char* name, const LatencyRun& run) {
      const double event_ms = run.avg_event_gap_s / rate * 1000.0;
      std::printf("%10.0f  %-9s %13.4f %12.4f %12.4f\n", rate, name,
                  run.avg_processing_ms, event_ms,
                  run.avg_processing_ms + event_ms);
    };
    report("tpstream", tps);
    report("iseq", iseq);
  }
  std::printf(
      "# expected shape (paper): tpstream's event latency is zero at every\n"
      "# rate; iseq's event latency grows as the rate drops and dominates\n"
      "# at 1 event/s (approaching the application-time gain of Fig 7a).\n"
      "# avg application-time trigger gap: tpstream=%.1f s, iseq=%.1f s\n",
      tps.avg_event_gap_s, iseq.avg_event_gap_s);
  PrintHistogramLine("tpstream processing_us", tps.processing_us());
  PrintHistogramLine("iseq processing_us", iseq.processing_us());
  PrintHistogramLine("tpstream event_gap_ticks", tps.event_gap_ticks());
  PrintHistogramLine("iseq event_gap_ticks", iseq.event_gap_ticks());
  MaybeWriteMetricsJson(flags, tps.metrics);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
