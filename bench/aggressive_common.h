#ifndef TPSTREAM_BENCH_AGGRESSIVE_COMMON_H_
#define TPSTREAM_BENCH_AGGRESSIVE_COMMON_H_

// Shared implementation of the aggressive-driver processing-time
// experiments (Figure 5 a/b of the paper): the Listing-1 query over
// Linear-Road-style trip data, executed by TPStream, ISEQ and the two
// straw-man baselines, with events pushed at the maximum possible rate.
//
// Methodology follows Section 6.1: event generation time is measured
// upfront and subtracted; every engine consumes the identical stream
// (same generator seed); thresholds are percentile-calibrated.

#include <cstdio>

#include "baselines/iseq.h"
#include "baselines/strawman.h"
#include "bench/bench_util.h"
#include "core/partitioned_operator.h"

namespace tpstream {
namespace bench {

inline cep::CepPattern EventLevelDriverPattern(const Schema& schema,
                                               const DriverThresholds& th) {
  // The single-query event-granularity encoding sketched in Section 1:
  // [accel]+ [speeding]+ [braking], contiguity glues the phases together.
  // Aggregates and duration constraints are lost (the paper's point).
  const ExprPtr accel =
      Gt(FieldRef(schema.IndexOf("accel"), "accel"), Literal(th.accel));
  const ExprPtr speed =
      Gt(FieldRef(schema.IndexOf("speed"), "speed"), Literal(th.speed));
  const ExprPtr decel =
      Lt(FieldRef(schema.IndexOf("accel"), "accel"), Literal(th.decel));
  cep::CepPattern p;
  p.steps.push_back(cep::PatternStep{"accel", accel, true, {}});
  p.steps.push_back(cep::PatternStep{"speeding", speed, true, {}});
  p.steps.push_back(cep::PatternStep{"braking", decel, false, {}});
  p.within = 300;
  return p;
}

inline int RunAggressiveBenchmark(int argc, char** argv, bool simplified) {
  const Flags flags(argc, argv);
  const int64_t max_events = flags.GetInt("events", 1000000);
  const int cars = static_cast<int>(flags.GetInt("cars", 1000));
  const Duration window = flags.GetInt("window", 300);
  const bool run_strawmen = !flags.Has("no-strawmen");

  LinearRoadGenerator::Options lr;
  lr.num_cars = cars;
  const DriverThresholds th = CalibrateThresholds(lr);
  LinearRoadGenerator probe(lr);
  const Schema schema = probe.schema();

  std::printf(
      "# Figure 5(%s): aggressive-driver detection, %s pattern\n"
      "# cars=%d window=%llds thresholds: speed>%.1f accel>%.2f accel<%.2f\n"
      "# columns: events  system  time_ms  kevents_s  matches  buffered\n",
      simplified ? "a" : "b", simplified ? "simplified" : "full", cars,
      static_cast<long long>(window), th.speed, th.accel, th.decel);

  std::vector<int64_t> sizes;
  for (int64_t n = max_events / 8; n <= max_events; n *= 2) {
    sizes.push_back(n);
  }

  for (int64_t n : sizes) {
    // Generation cost, subtracted from every system's measurement.
    double gen_ms = TimeMs([&] {
      LinearRoadGenerator gen(lr);
      for (int64_t i = 0; i < n; ++i) gen.Next();
    });

    auto report = [&](const char* name, double total_ms, int64_t matches,
                      size_t buffered) {
      const double ms = std::max(total_ms - gen_ms, 0.001);
      std::printf("%10lld  %-10s %10.1f %10.0f %9lld %9zu\n",
                  static_cast<long long>(n), name, ms, n / ms,
                  static_cast<long long>(matches), buffered);
      std::fflush(stdout);
    };

    {
      QuerySpec spec;
      spec.input_schema = schema;
      spec.definitions = DriverDefinitions(schema, th);
      spec.pattern = DriverPattern(simplified);
      spec.window = window;
      spec.partition_field = schema.IndexOf("car_id");
      PartitionedTPStream op(spec, {}, nullptr);
      LinearRoadGenerator gen(lr);
      const double ms =
          TimeMs([&] { for (int64_t i = 0; i < n; ++i) op.Push(gen.Next()); });
      report("tpstream", ms, op.num_matches(), op.BufferedCount());
    }
    {
      PartitionedBy<IseqOperator> op(
          schema.IndexOf("car_id"), [&] {
            return std::make_unique<IseqOperator>(
                DriverDefinitions(schema, th), DriverPattern(simplified),
                window, nullptr);
          });
      LinearRoadGenerator gen(lr);
      const double ms =
          TimeMs([&] { for (int64_t i = 0; i < n; ++i) op.Push(gen.Next()); });
      report("iseq", ms, op.num_matches(), op.BufferedCount());
    }
    if (run_strawmen) {
      PartitionedBy<TwoPhaseMatcher> op(
          schema.IndexOf("car_id"), [&] {
            return std::make_unique<TwoPhaseMatcher>(
                DriverDefinitions(schema, th), DriverPattern(simplified),
                window, nullptr);
          });
      LinearRoadGenerator gen(lr);
      const double ms =
          TimeMs([&] { for (int64_t i = 0; i < n; ++i) op.Push(gen.Next()); });
      report("esper1", ms, op.num_matches(), op.BufferedCount());
    }
    if (run_strawmen && simplified) {
      // Event-granularity single query (Esper-2 / SASE+ style); only the
      // simplified pattern is expressible without disjunctions.
      PartitionedBy<SingleRunMatcher> op(
          schema.IndexOf("car_id"), [&] {
            return std::make_unique<SingleRunMatcher>(
                EventLevelDriverPattern(schema, th), nullptr);
          });
      LinearRoadGenerator gen(lr);
      const double ms =
          TimeMs([&] { for (int64_t i = 0; i < n; ++i) op.Push(gen.Next()); });
      report("event-nfa", ms, op.num_matches(), op.BufferedCount());
    }
  }
  std::printf(
      "# expected shape (paper): tpstream ~ iseq, straw men several times\n"
      "# slower; event-nfa match counts differ (no aggregates/durations).\n");
  return 0;
}

}  // namespace bench
}  // namespace tpstream

#endif  // TPSTREAM_BENCH_AGGRESSIVE_COMMON_H_
