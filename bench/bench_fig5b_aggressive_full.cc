// Figure 5(b): processing time for aggressive-driver detection as a
// function of the input size, full Listing-1 pattern (all alternatives).
// Flags: --events=N --cars=N --window=SECONDS --no-strawmen
#include "bench/aggressive_common.h"

int main(int argc, char** argv) {
  return tpstream::bench::RunAggressiveBenchmark(argc, argv,
                                                 /*simplified=*/false);
}
