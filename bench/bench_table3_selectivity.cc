// Table 3: validation of the optimizer's initial selectivity estimates.
// Measures the empirical selectivity of every temporal relation over
// random situation-stream pairs (the generator's default distributions,
// windowed pairing) and compares it with the paper's estimates. Exact
// endpoint-equality relations (meets/starts/equals/...) are rare events
// in continuous random streams; what must hold is the *ranking*
// before >> during >> overlaps >> the equality-based relations, which is
// what plan selection depends on.
// Flags: --situations=N --window=SECONDS
#include <cstdio>
#include <deque>

#include "bench/bench_util.h"
#include "workload/interval_source.h"

namespace tpstream {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int64_t situations = flags.GetInt("situations", 200000);
  const Duration window = flags.GetInt("window", 2000);

  std::vector<RandomSituationGenerator::StreamOptions> streams(2);
  RandomSituationGenerator gen(streams, 4711);

  // Sliding pairing: every A situation against every B situation whose
  // window-constrained combination is admissible.
  std::deque<Situation> buffer_a;
  std::deque<Situation> buffer_b;
  int64_t counts[kNumRelations] = {0};
  int64_t pairs = 0;

  for (int64_t i = 0; i < situations; ++i) {
    const SymbolSituation ss = gen.Next();
    auto& own = ss.symbol == 0 ? buffer_a : buffer_b;
    auto& other = ss.symbol == 0 ? buffer_b : buffer_a;
    const TimePoint now = ss.situation.te;
    while (!buffer_a.empty() && buffer_a.front().ts < now - window) {
      buffer_a.pop_front();
    }
    while (!buffer_b.empty() && buffer_b.front().ts < now - window) {
      buffer_b.pop_front();
    }
    for (const Situation& counterpart : other) {
      const Situation& a = ss.symbol == 0 ? ss.situation : counterpart;
      const Situation& b = ss.symbol == 0 ? counterpart : ss.situation;
      ++pairs;
      for (int r = 0; r < kNumRelations; ++r) {
        if (Holds(static_cast<Relation>(r), a, b)) {
          ++counts[r];
          break;  // exactly one relation holds
        }
      }
    }
    own.push_back(ss.situation);
  }

  std::printf(
      "# Table 3: initial selectivity estimates vs. measurement\n"
      "# %lld situations per stream pairing, window=%lld s, %lld pairs\n"
      "# columns: relation  estimate  measured\n",
      static_cast<long long>(situations / 2),
      static_cast<long long>(window), static_cast<long long>(pairs));
  double sum = 0;
  for (int r = 0; r < kNumRelations; ++r) {
    const Relation rel = static_cast<Relation>(r);
    const double measured =
        pairs > 0 ? static_cast<double>(counts[r]) / pairs : 0.0;
    sum += measured;
    std::printf("%-14s %9.4f %10.6f\n", RelationName(rel),
                DefaultSelectivity(rel), measured);
  }
  std::printf("# combined measured selectivity: %.4f (should be ~1)\n", sum);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
