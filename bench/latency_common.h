#ifndef TPSTREAM_BENCH_LATENCY_COMMON_H_
#define TPSTREAM_BENCH_LATENCY_COMMON_H_

// Shared machinery for the wall-clock latency experiments (Figure 7 b/c):
// the disconnected pattern "A before B overlaps C" on synthetic streams,
// evaluated by TPStream (low latency) and ISEQ.
//
// Latency is split as in Section 6.3.2:
//  - processing latency: wall time between the arrival of the event that
//    triggered a result and the receipt of that result (measured with the
//    monotonic clock around each push);
//  - event latency: the application-time gap between the earliest event
//    that could have triggered the result (t_d, computed analytically per
//    configuration) and the event that actually triggered it, converted
//    to wall time via the event rate. TPStream triggers at t_d, so its
//    event latency is zero by construction.

#include <cstdio>

#include "algebra/detection.h"
#include "baselines/iseq.h"
#include "bench/bench_util.h"
#include "core/operator.h"

namespace tpstream {
namespace bench {

inline TemporalPattern LatencyPattern() {
  TemporalPattern p({"A", "B", "C"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  (void)p.AddRelation(1, Relation::kOverlaps, 2);
  return p;
}

struct LatencyRun {
  double wall_ms = 0;          // total push-loop time (generation excluded)
  double events_pushed = 0;
  double avg_processing_ms = 0;  // mean per-result processing latency
  double avg_event_gap_s = 0;    // mean application-time trigger gap
  int64_t matches = 0;
  /// Full observability snapshot of the run: the engine metrics (for
  /// TPStream: deriver.* / matcher.* / operator.* incl. the shared
  /// matcher.detection_latency histogram) plus the measurement-side
  /// `bench.processing_us` and `bench.event_gap_ticks` histograms.
  obs::MetricsSnapshot metrics;

  obs::HistogramSnapshot processing_us() const {
    auto it = metrics.histograms.find("bench.processing_us");
    return it == metrics.histograms.end() ? obs::HistogramSnapshot{}
                                          : it->second;
  }
  obs::HistogramSnapshot event_gap_ticks() const {
    auto it = metrics.histograms.find("bench.event_gap_ticks");
    return it == metrics.histograms.end() ? obs::HistogramSnapshot{}
                                          : it->second;
  }
};

/// Runs `push(event, on_this_push_start_ms)` over `events` synthetic
/// events; the callbacks record per-match processing latency and t_d gap.
template <typename PushFn>
LatencyRun DriveLatency(int64_t events, PushFn&& push) {
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;
  SyntheticGenerator gen(gopts);
  LatencyRun run;
  const double start = NowMs();
  for (int64_t i = 0; i < events; ++i) {
    const Event e = gen.Next();
    push(e);
  }
  run.wall_ms = NowMs() - start;
  run.events_pushed = static_cast<double>(events);
  return run;
}

struct LatencyObserver {
  const TemporalPattern* pattern = nullptr;
  double push_start_ms = 0;
  double processing_sum_ms = 0;
  double gap_sum_s = 0;
  int64_t matches = 0;
  /// Histograms backing the percentile columns (registered once).
  obs::LatencyHistogram* processing_us = nullptr;
  obs::LatencyHistogram* gap_ticks = nullptr;

  explicit LatencyObserver(obs::MetricsRegistry* registry) {
    processing_us = registry->GetHistogram("bench.processing_us");
    gap_ticks = registry->GetHistogram("bench.event_gap_ticks");
  }

  void OnMatch(const Match& m) {
    const double processing_ms = NowMs() - push_start_ms;
    processing_sum_ms += processing_ms;
    processing_us->Record(static_cast<int64_t>(processing_ms * 1000.0));
    const TimePoint td = EarliestDetection(*pattern, m.config);
    const TimePoint gap = m.detected_at - td;
    gap_sum_s += static_cast<double>(gap);
    gap_ticks->Record(gap);
    ++matches;
  }

  void Finish(LatencyRun* run, const obs::MetricsRegistry& registry) const {
    run->matches = matches;
    if (matches > 0) {
      run->avg_processing_ms = processing_sum_ms / matches;
      run->avg_event_gap_s = gap_sum_s / matches;
    }
    run->metrics = registry.Snapshot();
  }
};

inline LatencyRun MeasureTpstream(int64_t events, Duration window) {
  const TemporalPattern pattern = LatencyPattern();
  obs::MetricsRegistry registry;
  LatencyObserver observer(&registry);
  observer.pattern = &pattern;
  QuerySpec spec = SyntheticSpec(3, pattern, window);
  TPStreamOperator::Options options;
  options.metrics = &registry;
  TPStreamOperator op(spec, options, nullptr);
  op.SetMatchObserver([&](const Match& m) {
    // Ongoing situations have unknown ends; complete them for t_d
    // analysis by treating detection time as a lower bound (gap is zero
    // whenever detection happened at the current instant anyway).
    observer.OnMatch(m);
  });
  LatencyRun run = DriveLatency(events, [&](const Event& e) {
    observer.push_start_ms = NowMs();
    op.Push(e);
  });
  observer.Finish(&run, registry);
  return run;
}

inline LatencyRun MeasureIseq(int64_t events, Duration window) {
  const TemporalPattern pattern = LatencyPattern();
  obs::MetricsRegistry registry;
  LatencyObserver observer(&registry);
  observer.pattern = &pattern;
  IseqOperator op(SyntheticDefinitions(3), pattern, window,
                  [&](const Match& m) { observer.OnMatch(m); });
  LatencyRun run = DriveLatency(events, [&](const Event& e) {
    observer.push_start_ms = NowMs();
    op.Push(e);
  });
  observer.Finish(&run, registry);
  return run;
}

}  // namespace bench
}  // namespace tpstream

#endif  // TPSTREAM_BENCH_LATENCY_COMMON_H_
