#ifndef TPSTREAM_BENCH_LATENCY_COMMON_H_
#define TPSTREAM_BENCH_LATENCY_COMMON_H_

// Shared machinery for the wall-clock latency experiments (Figure 7 b/c):
// the disconnected pattern "A before B overlaps C" on synthetic streams,
// evaluated by TPStream (low latency) and ISEQ.
//
// Latency is split as in Section 6.3.2:
//  - processing latency: wall time between the arrival of the event that
//    triggered a result and the receipt of that result (measured with the
//    monotonic clock around each push);
//  - event latency: the application-time gap between the earliest event
//    that could have triggered the result (t_d, computed analytically per
//    configuration) and the event that actually triggered it, converted
//    to wall time via the event rate. TPStream triggers at t_d, so its
//    event latency is zero by construction.

#include <cstdio>

#include "algebra/detection.h"
#include "baselines/iseq.h"
#include "bench/bench_util.h"
#include "core/operator.h"

namespace tpstream {
namespace bench {

inline TemporalPattern LatencyPattern() {
  TemporalPattern p({"A", "B", "C"});
  (void)p.AddRelation(0, Relation::kBefore, 1);
  (void)p.AddRelation(1, Relation::kOverlaps, 2);
  return p;
}

struct LatencyRun {
  double wall_ms = 0;          // total push-loop time (generation excluded)
  double events_pushed = 0;
  double avg_processing_ms = 0;  // mean per-result processing latency
  double avg_event_gap_s = 0;    // mean application-time trigger gap
  int64_t matches = 0;
};

/// Runs `push(event, on_this_push_start_ms)` over `events` synthetic
/// events; the callbacks record per-match processing latency and t_d gap.
template <typename PushFn>
LatencyRun DriveLatency(int64_t events, PushFn&& push) {
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;
  SyntheticGenerator gen(gopts);
  LatencyRun run;
  const double start = NowMs();
  for (int64_t i = 0; i < events; ++i) {
    const Event e = gen.Next();
    push(e);
  }
  run.wall_ms = NowMs() - start;
  run.events_pushed = static_cast<double>(events);
  return run;
}

struct LatencyObserver {
  const TemporalPattern* pattern = nullptr;
  double push_start_ms = 0;
  double processing_sum_ms = 0;
  double gap_sum_s = 0;
  int64_t matches = 0;

  void OnMatch(const Match& m) {
    processing_sum_ms += NowMs() - push_start_ms;
    const TimePoint td = EarliestDetection(*pattern, m.config);
    gap_sum_s += static_cast<double>(m.detected_at - td);
    ++matches;
  }
};

inline LatencyRun MeasureTpstream(int64_t events, Duration window) {
  const TemporalPattern pattern = LatencyPattern();
  LatencyObserver observer;
  observer.pattern = &pattern;
  QuerySpec spec = SyntheticSpec(3, pattern, window);
  TPStreamOperator op(spec, {}, nullptr);
  op.SetMatchObserver([&](const Match& m) {
    // Ongoing situations have unknown ends; complete them for t_d
    // analysis by treating detection time as a lower bound (gap is zero
    // whenever detection happened at the current instant anyway).
    observer.OnMatch(m);
  });
  LatencyRun run = DriveLatency(events, [&](const Event& e) {
    observer.push_start_ms = NowMs();
    op.Push(e);
  });
  run.matches = observer.matches;
  if (observer.matches > 0) {
    run.avg_processing_ms = observer.processing_sum_ms / observer.matches;
    run.avg_event_gap_s = observer.gap_sum_s / observer.matches;
  }
  return run;
}

inline LatencyRun MeasureIseq(int64_t events, Duration window) {
  const TemporalPattern pattern = LatencyPattern();
  LatencyObserver observer;
  observer.pattern = &pattern;
  IseqOperator op(SyntheticDefinitions(3), pattern, window,
                  [&](const Match& m) { observer.OnMatch(m); });
  LatencyRun run = DriveLatency(events, [&](const Event& e) {
    observer.push_start_ms = NowMs();
    op.Push(e);
  });
  run.matches = observer.matches;
  if (observer.matches > 0) {
    run.avg_processing_ms = observer.processing_sum_ms / observer.matches;
    run.avg_event_gap_s = observer.gap_sum_s / observer.matches;
  }
  return run;
}

}  // namespace bench
}  // namespace tpstream

#endif  // TPSTREAM_BENCH_LATENCY_COMMON_H_
