// Figure 5(a): processing time for aggressive-driver detection as a
// function of the input size, simplified pattern (meets/overlaps only).
// Flags: --events=N --cars=N --window=SECONDS --no-strawmen
#include "bench/aggressive_common.h"

int main(int argc, char** argv) {
  return tpstream::bench::RunAggressiveBenchmark(argc, argv,
                                                 /*simplified=*/true);
}
