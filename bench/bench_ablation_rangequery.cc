// Ablation: binary-search range queries (Section 5.2, Equation 2) versus
// the naive full-buffer scan (Equation 1) inside the matcher's
// findMatches. Both produce identical matches; the paper's design choice
// is that the range-query strategy keeps per-step cost logarithmic in the
// buffer size. The gap therefore must widen with the window.
// Flags: --situations=N --max-window=SECONDS
#include <cstdio>

#include "bench/bench_util.h"
#include "matcher/matcher.h"
#include "workload/interval_source.h"

namespace tpstream {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  // The naive arm is intentionally slow; raise --max-window=50000 for the
  // full sweep (the gap grows to ~30x there).
  const int64_t situations = flags.GetInt("situations", 100000);
  const Duration max_window = flags.GetInt("max-window", 5000);

  TemporalPattern pattern({"A", "B", "C"});
  (void)pattern.AddRelation(0, Relation::kBefore, 1);
  (void)pattern.AddRelation(1, Relation::kOverlaps, 2);

  std::printf(
      "# Ablation: range-query join (Eq. 2) vs naive scan (Eq. 1)\n"
      "# pattern 'A before B overlaps C', %lld situations\n"
      "# columns: window_s  strategy  time_ms  ksituations_s  matches\n",
      static_cast<long long>(situations));

  for (Duration window = 500; window <= max_window; window *= 10) {
    for (const bool naive : {false, true}) {
      std::vector<RandomSituationGenerator::StreamOptions> streams(3);
      RandomSituationGenerator gen(streams, 99);
      int64_t matches = 0;
      Matcher matcher(pattern, window,
                      [&](const Match&) { ++matches; });
      matcher.SetNaiveScan(naive);
      const double ms = TimeMs([&] {
        for (int64_t i = 0; i < situations; ++i) {
          const SymbolSituation ss = gen.Next();
          matcher.Update({ss}, ss.situation.te);
        }
      });
      std::printf("%8lld  %-12s %10.1f %12.0f %10lld\n",
                  static_cast<long long>(window),
                  naive ? "naive-scan" : "range-query", ms,
                  situations / std::max(ms, 0.001),
                  static_cast<long long>(matches));
      std::fflush(stdout);
    }
  }
  std::printf(
      "# expected shape: identical match counts; the naive scan degrades\n"
      "# roughly linearly with the window while range queries stay "
      "sub-linear.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tpstream

int main(int argc, char** argv) { return tpstream::bench::Run(argc, argv); }
