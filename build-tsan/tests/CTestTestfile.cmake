# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/buffer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/concurrency_stress_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/csv_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/deriver_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/detection_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/doc_examples_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/expression_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/interval_relation_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/low_latency_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/matcher_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nfa_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/operator_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parser_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/partition_hash_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_sweeps_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/pattern_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/range_bounds_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/reorder_buffer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/stress_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/value_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workload_test[1]_include.cmake")
